// Immutable undirected graph in compressed sparse row (CSR) form.
//
// This is the substrate every algorithm in the library runs on. Graphs are
// simple (no self-loops, no parallel edges), unweighted and undirected; they
// are constructed through GraphBuilder (src/graph/graph_builder.h), loaded
// from disk (src/graph/graph_io.h) or produced by a synthetic generator
// (src/graph/generators.h).
//
// Storage model: a Graph is a cheap handle — three read-only spans over a
// shared, immutable backing payload. The payload is either heap vectors
// (FromCsr / GraphBuilder) or an mmap'd binary snapshot (MapBinary in
// graph_io.h), so a GraphStore holding many multi-million-edge graphs can
// share page-cache-backed memory across processes instead of private heap
// copies. Copying a Graph shares the payload (it is immutable); the payload
// is freed when the last Graph referencing it dies — which is what lets
// in-flight queries outlive a GraphStore::Remove().
//
// Layout model: `offsets_` is always the standard prefix-degree array in
// node-id order (so Degree() is one subtraction), while `row_starts_` gives
// the *physical* position of each adjacency row. In the standard layout the
// two coincide (row_starts_ aliases offsets_); a degree-ordered layout
// (graph/relabel.h) permutes row placement so hub rows pack together while
// node ids — and therefore every query result, seed id and cache key — are
// unchanged bit for bit.

#ifndef HKPR_GRAPH_GRAPH_H_
#define HKPR_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace hkpr {

/// Node identifier. Graphs in this library are bounded by 2^32-1 nodes.
using NodeId = uint32_t;

/// An immutable simple undirected graph in CSR layout.
///
/// `offsets()` has NumNodes()+1 entries; the neighbors of node v occupy
/// `adjacency()[RowStart(v) .. RowStart(v) + Degree(v))`, sorted ascending.
/// Every edge {u, v} appears twice (u in v's list and v in u's list). In the
/// standard layout RowStart(v) == offsets()[v]; a degree-ordered layout
/// permutes physical row placement only (see graph/relabel.h).
class Graph {
 public:
  Graph() = default;

  /// Assembles a graph from raw CSR arrays. The arrays must describe a valid
  /// symmetric simple graph: offsets non-decreasing with
  /// `offsets.front() == 0`, `offsets.back() == adjacency.size()`, each
  /// adjacency row sorted, free of duplicates and self-references, and every
  /// arc paired with its reverse. Validated with CHECKs in debug builds.
  static Graph FromCsr(std::vector<uint64_t> offsets,
                       std::vector<NodeId> adjacency);

  /// Assembles a graph whose adjacency rows are physically permuted:
  /// `offsets` are the standard prefix sums in id order (degrees), and row v
  /// occupies `adjacency[row_starts[v] .. row_starts[v] + degree(v))`. The
  /// row placement must tile `adjacency` exactly (no gaps, no overlap).
  /// This is the constructor behind the degree-ordered layout.
  static Graph FromPermutedCsr(std::vector<uint64_t> offsets,
                               std::vector<NodeId> adjacency,
                               std::vector<uint64_t> row_starts);

  /// Wraps externally owned CSR sections (an mmap'd binary snapshot). The
  /// spans must stay valid for as long as `storage` is alive; `row_starts`
  /// may be empty (standard layout) or hold NumNodes() physical row starts.
  /// The caller (graph_io) is responsible for having validated the data.
  static Graph FromExternal(std::span<const uint64_t> offsets,
                            std::span<const NodeId> adjacency,
                            std::span<const uint64_t> row_starts,
                            std::shared_ptr<const void> storage);

  /// Number of nodes n (including isolated nodes).
  uint32_t NumNodes() const {
    return offsets_.empty() ? 0 : static_cast<uint32_t>(offsets_.size() - 1);
  }

  /// Number of undirected edges m.
  uint64_t NumEdges() const { return adjacency_.size() / 2; }

  /// Total volume of the graph: sum of all degrees = 2m.
  uint64_t Volume() const { return adjacency_.size(); }

  /// Average degree 2m/n (0 for the empty graph).
  double AverageDegree() const {
    return NumNodes() == 0
               ? 0.0
               : static_cast<double>(Volume()) / static_cast<double>(NumNodes());
  }

  /// Degree of node v.
  uint32_t Degree(NodeId v) const {
    HKPR_DCHECK(v < NumNodes());
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Physical position of v's adjacency row within adjacency(). Equals
  /// offsets()[v] in the standard layout; under a degree-ordered layout it
  /// is the permuted placement. Stable unique arc ids: RowStart(v) + i for
  /// the i-th neighbor.
  uint64_t RowStart(NodeId v) const {
    HKPR_DCHECK(v < NumNodes());
    return row_starts_[v];
  }

  /// Maximum degree over all nodes (0 for the empty graph).
  uint32_t MaxDegree() const;

  /// Neighbors of v, sorted ascending.
  std::span<const NodeId> Neighbors(NodeId v) const {
    HKPR_DCHECK(v < NumNodes());
    return {adjacency_.data() + row_starts_[v], Degree(v)};
  }

  /// True if the undirected edge {u, v} exists. O(log d(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// A uniformly random neighbor of v. v must have positive degree.
  /// Templated on the generator (Rng or CounterRng, common/random.h).
  template <typename RngT>
  NodeId RandomNeighbor(NodeId v, RngT& rng) const {
    const uint32_t d = Degree(v);
    HKPR_DCHECK(d > 0);
    return adjacency_[row_starts_[v] + rng.UniformInt(d)];
  }

  /// Cheap prefetch hint: pulls v's offsets/row-start words toward cache so
  /// a Degree()/RowStart() issued a few dozen cycles later does not stall on
  /// DRAM. No-op outside GCC/Clang. The interleaved walk kernel issues one
  /// of these per in-flight walk per round; on graphs larger than LLC this
  /// is what turns the walk phase from latency-bound to bandwidth-bound.
  void PrefetchNode(NodeId v) const {
    HKPR_DCHECK(v < NumNodes());
#if defined(__GNUC__)
    __builtin_prefetch(&offsets_[v], 0, 1);
    if (degree_ordered()) __builtin_prefetch(&row_starts_[v], 0, 1);
#endif
  }

  /// Prefetch hint for the cache line holding v's i-th neighbor (i.e. the
  /// adjacency word RandomNeighbor would read for index i). Requires v's
  /// row start to be resident — pair with an earlier PrefetchNode(v).
  void PrefetchNeighbors(NodeId v, uint32_t i = 0) const {
    HKPR_DCHECK(v < NumNodes());
    HKPR_DCHECK(i < Degree(v) || Degree(v) == 0);
#if defined(__GNUC__)
    __builtin_prefetch(&adjacency_[row_starts_[v] + i], 0, 1);
#endif
  }

  /// Sum of degrees over a set of nodes.
  template <typename Container>
  uint64_t VolumeOf(const Container& nodes) const {
    uint64_t vol = 0;
    for (NodeId v : nodes) vol += Degree(v);
    return vol;
  }

  /// Bytes of the CSR sections this graph reads (for Figure 5 memory
  /// accounting). For an mmap-backed graph these bytes are page-cache-backed
  /// and shared, not private heap — see mmap_backed().
  size_t MemoryBytes() const {
    size_t bytes = offsets_.size_bytes() + adjacency_.size_bytes();
    if (degree_ordered()) bytes += row_starts_.size_bytes();
    return bytes;
  }

  /// The standard prefix-degree array (NumNodes()+1 entries, id order).
  std::span<const uint64_t> offsets() const { return offsets_; }
  /// The adjacency arcs (2m entries); physical row order is row_starts().
  std::span<const NodeId> adjacency() const { return adjacency_; }
  /// Physical row starts (NumNodes() entries); aliases offsets() in the
  /// standard layout.
  std::span<const uint64_t> row_starts() const { return row_starts_; }

  /// True when the physical row placement differs from id order (a
  /// degree-ordered layout produced by RelabelByDegree).
  bool degree_ordered() const {
    return !offsets_.empty() && row_starts_.data() != offsets_.data();
  }

  /// True when the backing payload is an mmap'd file region rather than
  /// private heap vectors.
  bool mmap_backed() const { return mmap_backed_; }

 private:
  struct OwnedStorage;

  /// Keeps the spans' backing memory alive: OwnedStorage for heap graphs,
  /// the mapped-file region for mmap graphs. Shared between copies.
  std::shared_ptr<const void> storage_;
  std::span<const uint64_t> offsets_;
  std::span<const NodeId> adjacency_;
  std::span<const uint64_t> row_starts_;
  bool mmap_backed_ = false;
};

}  // namespace hkpr

#endif  // HKPR_GRAPH_GRAPH_H_
