#include "hkpr/power_method.h"

#include "common/logging.h"

namespace hkpr {

std::vector<double> ExactHkpr(const Graph& graph, const HeatKernel& kernel,
                              NodeId seed) {
  HKPR_CHECK(seed < graph.NumNodes());
  const uint32_t n = graph.NumNodes();
  std::vector<double> x(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> acc(n, 0.0);
  x[seed] = 1.0;
  acc[seed] = kernel.Eta(0);
  for (uint32_t k = 1; k <= kernel.MaxHop(); ++k) {
    // x <- x P (row-vector update): next[v] = sum_{u in N(v)} x[u] / d(u).
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      if (x[u] == 0.0) continue;
      const uint32_t d = graph.Degree(u);
      if (d == 0) {
        // Walk mass stranded at an isolated node stays there.
        next[u] += x[u];
        continue;
      }
      const double share = x[u] / d;
      for (NodeId v : graph.Neighbors(u)) next[v] += share;
    }
    x.swap(next);
    const double eta = kernel.Eta(k);
    for (NodeId v = 0; v < n; ++v) acc[v] += eta * x[v];
  }
  return acc;
}

std::vector<double> ExactHkpr(const Graph& graph, double t, NodeId seed) {
  const HeatKernel kernel(t);
  return ExactHkpr(graph, kernel, seed);
}

void NormalizeByDegree(const Graph& graph, std::vector<double>& rho) {
  HKPR_CHECK(rho.size() == graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    const uint32_t d = graph.Degree(v);
    rho[v] = d > 0 ? rho[v] / d : 0.0;
  }
}

}  // namespace hkpr
