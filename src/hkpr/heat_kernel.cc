#include "hkpr/heat_kernel.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hkpr {

HeatKernel::HeatKernel(double t, double tail_tolerance) : t_(t) {
  HKPR_CHECK(t > 0.0) << "heat constant must be positive";
  HKPR_CHECK(tail_tolerance > 0.0 && tail_tolerance < 0.1);

  // Forward recurrence eta(k) = eta(k-1) * t / k. For the t values used in
  // practice (<= ~64) eta(0) = e^{-t} stays comfortably inside double range.
  // Grow the table until the remaining tail mass 1 - cdf is below tolerance
  // and we are past the Poisson mode (k > t), so the tail is decreasing.
  double eta = std::exp(-t);
  double cdf = eta;
  eta_.push_back(eta);
  cdf_.push_back(cdf);
  uint32_t k = 0;
  while (1.0 - cdf > tail_tolerance || static_cast<double>(k) <= t) {
    ++k;
    eta *= t / static_cast<double>(k);
    cdf += eta;
    eta_.push_back(eta);
    cdf_.push_back(cdf);
    HKPR_CHECK(k < 100000) << "heat kernel table failed to converge";
  }

  // Backward suffix sums for psi; the ignored analytic tail (< tolerance) is
  // folded into the last entry so that psi(0) == 1 exactly.
  psi_.assign(eta_.size(), 0.0);
  double tail = std::max(0.0, 1.0 - cdf);
  for (size_t i = eta_.size(); i-- > 0;) {
    tail += eta_[i];
    psi_[i] = tail;
  }

  term_.assign(eta_.size(), 0.0);
  for (size_t i = 0; i < eta_.size(); ++i) term_[i] = eta_[i] / psi_[i];
}

uint32_t HeatKernel::SamplePoissonLength(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return MaxHop();
  return static_cast<uint32_t>(it - cdf_.begin());
}

}  // namespace hkpr
