#include "hkpr/queries.h"

#include <algorithm>

#include "common/logging.h"

namespace hkpr {

std::vector<ScoredNode> TopKNormalized(const Graph& graph,
                                       const SparseVector& estimate,
                                       size_t k) {
  std::vector<ScoredNode> scored;
  scored.reserve(estimate.nnz());
  for (const auto& e : estimate.entries()) {
    const uint32_t d = graph.Degree(e.key);
    if (d == 0 || e.value <= 0.0) continue;
    scored.push_back({e.key, estimate.ValueWithOffset(e.key, d) / d});
  }
  const auto better = [](const ScoredNode& a, const ScoredNode& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  };
  if (scored.size() > k) {
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      better);
    scored.resize(k);
  } else {
    std::sort(scored.begin(), scored.end(), better);
  }
  return scored;
}

std::vector<ScoredNode> TopKQuery(const Graph& graph,
                                  HkprEstimator& estimator, NodeId seed,
                                  size_t k) {
  const SparseVector estimate = estimator.Estimate(seed);
  return TopKNormalized(graph, estimate, k);
}

SparseVector EstimateSeedSet(const Graph& graph, HkprEstimator& estimator,
                             std::span<const NodeId> seeds,
                             std::span<const double> weights) {
  HKPR_CHECK(!seeds.empty());
  HKPR_CHECK(weights.empty() || weights.size() == seeds.size())
      << "weights must be empty or match seeds";
  double total = 0.0;
  if (!weights.empty()) {
    for (double w : weights) {
      HKPR_CHECK(w >= 0.0);
      total += w;
    }
    HKPR_CHECK(total > 0.0) << "seed-set weights must have positive sum";
  }

  SparseVector combined;
  double combined_offset = 0.0;
  for (size_t i = 0; i < seeds.size(); ++i) {
    HKPR_CHECK(seeds[i] < graph.NumNodes()) << "seed out of range";
    const double w = weights.empty()
                         ? 1.0 / static_cast<double>(seeds.size())
                         : weights[i] / total;
    if (w == 0.0) continue;
    const SparseVector estimate = estimator.Estimate(seeds[i]);
    for (const auto& e : estimate.entries()) {
      combined.Add(e.key, w * e.value);
    }
    combined_offset += w * estimate.degree_offset();
  }
  combined.set_degree_offset(combined_offset);
  return combined;
}

}  // namespace hkpr
