#include "hkpr/queries.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace hkpr {

std::vector<ScoredNode> TopKNormalized(const Graph& graph,
                                       const SparseVector& estimate,
                                       size_t k) {
  std::vector<ScoredNode> scored;
  scored.reserve(estimate.nnz());
  for (const auto& e : estimate.entries()) {
    const uint32_t d = graph.Degree(e.key);
    if (d == 0 || e.value <= 0.0) continue;
    scored.push_back({e.key, estimate.ValueWithOffset(e.key, d) / d});
  }
  const auto better = [](const ScoredNode& a, const ScoredNode& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  };
  if (scored.size() > k) {
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      better);
    scored.resize(k);
  } else {
    std::sort(scored.begin(), scored.end(), better);
  }
  return scored;
}

std::vector<ScoredNode> TopKQuery(const Graph& graph,
                                  HkprEstimator& estimator, NodeId seed,
                                  size_t k) {
  const SparseVector estimate = estimator.Estimate(seed);
  return TopKNormalized(graph, estimate, k);
}

SparseVector EstimateSeedSet(const Graph& graph, HkprEstimator& estimator,
                             std::span<const NodeId> seeds,
                             std::span<const double> weights) {
  HKPR_CHECK(!seeds.empty());
  HKPR_CHECK(weights.empty() || weights.size() == seeds.size())
      << "weights must be empty or match seeds";
  double total = 0.0;
  if (!weights.empty()) {
    for (double w : weights) {
      HKPR_CHECK(w >= 0.0);
      total += w;
    }
    HKPR_CHECK(total > 0.0) << "seed-set weights must have positive sum";
  }

  SparseVector combined;
  double combined_offset = 0.0;
  for (size_t i = 0; i < seeds.size(); ++i) {
    HKPR_CHECK(seeds[i] < graph.NumNodes()) << "seed out of range";
    const double w = weights.empty()
                         ? 1.0 / static_cast<double>(seeds.size())
                         : weights[i] / total;
    if (w == 0.0) continue;
    const SparseVector estimate = estimator.Estimate(seeds[i]);
    for (const auto& e : estimate.entries()) {
      combined.Add(e.key, w * e.value);
    }
    combined_offset += w * estimate.degree_offset();
  }
  combined.set_degree_offset(combined_offset);
  return combined;
}

uint64_t QueryRngSeed(uint64_t base_seed, uint64_t query_index) {
  uint64_t z = base_seed + (query_index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

QueryExecutor::PlanKey QueryExecutor::KeyOf(uint32_t backend_id,
                                            const ApproxParams& params) {
  PlanKey key;
  key.backend_id = backend_id;
  key.t_bits = std::bit_cast<uint64_t>(params.t);
  key.eps_r_bits = std::bit_cast<uint64_t>(params.eps_r);
  key.delta_bits = std::bit_cast<uint64_t>(params.delta);
  key.p_f_bits = std::bit_cast<uint64_t>(params.p_f);
  return key;
}

QueryExecutor::QueryExecutor(const Graph& graph, const ApproxParams& params,
                             uint64_t base_seed, const BackendSpec& spec)
    : graph_(graph), base_seed_(base_seed), context_(spec.context) {
  const BackendInfo* info = EstimatorRegistry::Global().Find(spec.name);
  HKPR_CHECK(info != nullptr) << "unknown estimator backend \"" << spec.name
                              << "\" (see EstimatorRegistry::Names())";
  // A spec resolved by ResolvedSpec() carries p'_f for the construction
  // params; remember which p_f it belongs to so lazily routed plans with
  // the same p_f reuse it instead of re-scanning.
  memo_pf_ = params.p_f;
  memo_pf_prime_ = context_.pf_prime;
  default_plan_.backend = spec.name;
  // The registry's collision-checked id, not a local re-hash of the name.
  default_plan_.backend_id = info->stable_id;
  default_plan_.params = params;
  // The constructor seed is irrelevant for randomized backends: every
  // query re-seeds the estimator from (base_seed_, query index).
  estimators_.push_back(
      PlanEstimator{KeyOf(info->stable_id, params),
                    info->factory(graph, params, base_seed, spec.context)});
}

double QueryExecutor::PfPrimeFor(double p_f) {
  if (memo_pf_prime_ < 0.0 ||
      std::bit_cast<uint64_t>(memo_pf_) != std::bit_cast<uint64_t>(p_f)) {
    memo_pf_prime_ = ComputePfPrime(graph_, p_f);
    memo_pf_ = p_f;
  }
  return memo_pf_prime_;
}

WorkspaceEstimator& QueryExecutor::EstimatorFor(const QueryPlan& plan) {
  const PlanKey key = KeyOf(plan.backend_id, plan.params);
  // Entry 0 is the pinned default; entries behind it are kept in LRU
  // order (oldest first), maintained by rotating hits to the back.
  for (size_t i = 0; i < estimators_.size(); ++i) {
    if (!(estimators_[i].key == key)) continue;
    WorkspaceEstimator& estimator = *estimators_[i].estimator;
    if (i > 0 && i + 1 < estimators_.size()) {
      std::rotate(estimators_.begin() + i, estimators_.begin() + i + 1,
                  estimators_.end());
    }
    return estimator;  // the heap object is stable across the rotate
  }
  // First query on this plan: build its estimator from the registry with
  // the executor's shared tuning context. Upstream plan resolution
  // validated the name, so an unknown backend here is a wiring bug.
  const BackendInfo* info = EstimatorRegistry::Global().Find(plan.backend);
  HKPR_CHECK(info != nullptr && info->stable_id == plan.backend_id)
      << "query plan names unregistered backend \"" << plan.backend << "\"";
  BackendContext context = context_;
  if (info->randomized) context.pf_prime = PfPrimeFor(plan.params.p_f);
  if (estimators_.size() >= kMaxPlanEstimators) {
    // Bounded: evict the least-recently-used non-default plan so a
    // stream of distinct overrides cannot grow memory without bound.
    // Rebuilding later is bit-identical (see kMaxPlanEstimators).
    estimators_.erase(estimators_.begin() + 1);
  }
  estimators_.push_back(PlanEstimator{
      key, info->factory(graph_, plan.params, base_seed_, context)});
  return *estimators_.back().estimator;
}

const SparseVector& QueryExecutor::Run(WorkspaceEstimator& estimator,
                                       NodeId seed, uint64_t query_index) {
  HKPR_CHECK(seed < graph_.NumNodes()) << "query seed out of range";
  estimator.Reseed(QueryRngSeed(base_seed_, query_index));
  return estimator.EstimateInto(seed, workspace_);
}

const SparseVector& QueryExecutor::AnswerInto(NodeId seed,
                                              uint64_t query_index) {
  // The default plan's estimator is always entry 0 — no key scan on the
  // unrouted fast path.
  return Run(*estimators_.front().estimator, seed, query_index);
}

const SparseVector& QueryExecutor::AnswerInto(NodeId seed,
                                              uint64_t query_index,
                                              const QueryPlan& plan) {
  return Run(EstimatorFor(plan), seed, query_index);
}

SparseVector QueryExecutor::Answer(NodeId seed, uint64_t query_index) {
  // Compact: the returned vector must not inherit the workspace's warmed-up
  // table capacity (one hub query would bloat every later small result
  // answered by this executor).
  return AnswerInto(seed, query_index).CompactCopy();
}

SparseVector QueryExecutor::Answer(NodeId seed, uint64_t query_index,
                                   const QueryPlan& plan) {
  return AnswerInto(seed, query_index, plan).CompactCopy();
}

std::vector<ScoredNode> QueryExecutor::AnswerTopK(NodeId seed,
                                                  uint64_t query_index,
                                                  size_t k) {
  return TopKNormalized(graph_, AnswerInto(seed, query_index), k);
}

std::vector<ScoredNode> QueryExecutor::AnswerTopK(NodeId seed,
                                                  uint64_t query_index,
                                                  size_t k,
                                                  const QueryPlan& plan) {
  return TopKNormalized(graph_, AnswerInto(seed, query_index, plan), k);
}

namespace {

BackendSpec TeaPlusSpec(const TeaPlusOptions& options) {
  BackendSpec spec;
  spec.context.tea_plus = options;
  return spec;
}

}  // namespace

BatchQueryEngine::BatchQueryEngine(const Graph& graph,
                                   const ApproxParams& params, uint64_t seed,
                                   uint32_t num_threads,
                                   const BackendSpec& backend)
    : graph_(graph), pool_(num_threads) {
  // Resolve shared precomputations (p'_f, an O(n) scan) once for all
  // per-thread estimators.
  const BackendSpec spec = ResolvedSpec(backend, graph, params);
  CheckPoolUnsharedAcrossWorkers(spec, pool_.num_threads());
  executors_.reserve(pool_.num_threads());
  for (uint32_t tid = 0; tid < pool_.num_threads(); ++tid) {
    executors_.emplace_back(graph, params, seed, spec);
  }
}

BatchQueryEngine::BatchQueryEngine(const Graph& graph,
                                   const ApproxParams& params, uint64_t seed,
                                   uint32_t num_threads,
                                   const TeaPlusOptions& options)
    : BatchQueryEngine(graph, params, seed, num_threads,
                       TeaPlusSpec(options)) {}

std::vector<SparseVector> BatchQueryEngine::EstimateBatch(
    std::span<const NodeId> seeds) {
  return EstimateBatch(seeds, default_plan());
}

std::vector<SparseVector> BatchQueryEngine::EstimateBatch(
    std::span<const NodeId> seeds, const QueryPlan& plan) {
  if (seeds.empty()) return {};
  for (NodeId seed : seeds) {
    HKPR_CHECK(seed < graph_.NumNodes()) << "batch seed out of range";
  }
  std::vector<SparseVector> out(seeds.size());
  const uint64_t batch_offset = queries_served_;
  queries_served_ += seeds.size();
  pool_.Chunks(seeds.size(), [&](uint32_t tid, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      out[i] = executors_[tid].Answer(seeds[i], batch_offset + i, plan);
    }
  });
  return out;
}

std::vector<std::vector<ScoredNode>> BatchQueryEngine::TopKBatch(
    std::span<const NodeId> seeds, size_t k) {
  return TopKBatch(seeds, k, default_plan());
}

std::vector<std::vector<ScoredNode>> BatchQueryEngine::TopKBatch(
    std::span<const NodeId> seeds, size_t k, const QueryPlan& plan) {
  if (seeds.empty()) return {};
  for (NodeId seed : seeds) {
    HKPR_CHECK(seed < graph_.NumNodes()) << "batch seed out of range";
  }
  std::vector<std::vector<ScoredNode>> out(seeds.size());
  const uint64_t batch_offset = queries_served_;
  queries_served_ += seeds.size();
  pool_.Chunks(seeds.size(), [&](uint32_t tid, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      out[i] = executors_[tid].AnswerTopK(seeds[i], batch_offset + i, k, plan);
    }
  });
  return out;
}

}  // namespace hkpr
