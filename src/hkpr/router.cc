#include "hkpr/router.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "hkpr/backend.h"

namespace hkpr {

ApproxParams ApplyParamOverrides(const ApproxParams& base,
                                 const PlanOverrides& overrides) {
  ApproxParams params = base;
  if (overrides.t.has_value()) params.t = *overrides.t;
  if (overrides.eps_r.has_value()) params.eps_r = *overrides.eps_r;
  if (overrides.delta.has_value()) params.delta = *overrides.delta;
  return params;
}

bool ServableParams(const ApproxParams& params) {
  return std::isfinite(params.t) && params.t > 0.0 && params.t <= 1000.0 &&
         std::isfinite(params.eps_r) && params.eps_r > 0.0 &&
         params.eps_r < 1.0 && std::isfinite(params.delta) &&
         params.delta > 0.0 && std::isfinite(params.p_f) && params.p_f > 0.0 &&
         params.p_f < 1.0;
}

RuleBasedRouter::RuleBasedRouter(const RuleBasedRouterOptions& options)
    : options_(options) {
  HKPR_CHECK(!options_.push_backend.empty() &&
             !options_.walk_backend.empty() &&
             !options_.default_backend.empty())
      << "rule-based router needs non-empty backend names";
}

std::string_view RuleBasedRouter::Route(const RoutingQuery& query) const {
  // Short Taylor series: deterministic push certifies in a few hops
  // regardless of the seed.
  if (query.params.t <= options_.small_t) return options_.push_backend;
  // Low-degree seed at moderate t: below the measured TEA+/HK-Relax cost
  // crossover the push frontier is too small to drain the residue and
  // TEA+ pays its full (seed-independent) walk budget, while HK-Relax
  // stays frontier-cheap.
  const double low_cut =
      options_.low_degree_factor * std::max(1.0, query.avg_degree);
  if (query.params.t <= options_.push_max_t &&
      static_cast<double>(query.seed_degree) <= low_cut) {
    return options_.push_backend;
  }
  // Tiny graph: omega ~ 1/delta ~ n is trivial, so pure Monte-Carlo skips
  // the push set-up entirely.
  if (query.num_nodes <= options_.small_graph_nodes) {
    return options_.walk_backend;
  }
  return options_.default_backend;
}

const RoutingPolicy& DefaultRouter() {
  static const RuleBasedRouter* router = new RuleBasedRouter();
  return *router;
}

std::optional<QueryPlan> ResolveQueryPlan(const Graph& graph, NodeId seed,
                                          std::string_view default_backend,
                                          const ApproxParams& default_params,
                                          const PlanOverrides& overrides,
                                          const RoutingPolicy& policy) {
  return ResolveQueryPlan(graph, seed, GraphScaleFeatures::Of(graph),
                          default_backend, default_params, overrides, policy);
}

std::optional<QueryPlan> ResolveQueryPlan(const Graph& graph, NodeId seed,
                                          const GraphScaleFeatures& scale,
                                          std::string_view default_backend,
                                          const ApproxParams& default_params,
                                          const PlanOverrides& overrides,
                                          const RoutingPolicy& policy) {
  HKPR_CHECK(seed < graph.NumNodes()) << "plan seed out of range";
  QueryPlan plan;
  plan.params = ApplyParamOverrides(default_params, overrides);
  if (!ServableParams(plan.params)) {
    // Out-of-range effective parameters are reported, never allowed to
    // reach an estimator constructor's check-fail on a serving thread.
    // Broken *defaults* die loudly at service construction (which
    // validates with the same predicate), so reaching here means a
    // request override pushed the params out of range — external input.
    return std::nullopt;
  }

  const bool requested = !overrides.backend.empty();
  std::string_view backend = requested ? overrides.backend : default_backend;
  const bool routed = backend == kAutoBackend;
  if (routed) {
    RoutingQuery query;
    query.seed = seed;
    query.seed_degree = graph.Degree(seed);
    query.num_nodes = scale.num_nodes;
    query.num_edges = scale.num_edges;
    query.avg_degree = scale.avg_degree;
    query.params = plan.params;
    backend = policy.Route(query);
  }

  const BackendInfo* info = EstimatorRegistry::Global().Find(backend);
  if (info == nullptr) {
    // A request naming an unknown backend is external input: report it.
    // The policy or the configured default naming one is a wiring bug:
    // die loudly so it cannot ship.
    HKPR_CHECK(requested && !routed)
        << "routing policy \"" << policy.name() << "\" / default backend "
        << "resolved to unregistered backend \"" << backend
        << "\" (available: " << EstimatorRegistry::Global().JoinedNames()
        << ")";
    return std::nullopt;
  }
  plan.backend = std::string(backend);
  plan.backend_id = info->stable_id;
  return plan;
}

}  // namespace hkpr
