#include "hkpr/random_walk.h"

namespace hkpr {

NodeId KRandomWalk(const Graph& graph, const HeatKernel& kernel, NodeId u,
                   uint32_t k, Rng& rng, uint64_t* steps) {
  NodeId current = u;
  uint32_t hop = k;
  const uint32_t max_hop = kernel.MaxHop();
  uint64_t traversed = 0;
  while (hop < max_hop) {
    if (rng.UniformDouble() <= kernel.TerminationProb(hop)) break;
    if (graph.Degree(current) == 0) break;  // stranded: stop in place
    current = graph.RandomNeighbor(current, rng);
    ++hop;
    ++traversed;
  }
  if (steps != nullptr) *steps += traversed;
  return current;
}

}  // namespace hkpr
