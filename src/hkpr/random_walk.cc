#include "hkpr/random_walk.h"

#include <span>

namespace hkpr {

NodeId KRandomWalk(const Graph& graph, const HeatKernel& kernel, NodeId u,
                   uint32_t k, Rng& rng, uint64_t* steps) {
  const uint32_t max_hop = kernel.MaxHop();
  // A stranded walk (degree-0 position) stays stranded, so the degree check
  // runs once per visited node — before the hop loop for the start node,
  // after each move for its successors — rather than once per step.
  if (k >= max_hop || graph.Degree(u) == 0) return u;
  const std::span<const double> term = kernel.TerminationProbs();
  NodeId current = u;
  uint32_t hop = k;
  uint64_t traversed = 0;
  while (hop < max_hop) {
    if (rng.UniformDouble() <= term[hop]) break;
    current = graph.RandomNeighbor(current, rng);
    ++hop;
    ++traversed;
    if (graph.Degree(current) == 0) break;  // stranded: stop in place
  }
  if (steps != nullptr) *steps += traversed;
  return current;
}

}  // namespace hkpr
