// Reusable per-query scratch state for the HKPR estimators.
//
// Every Estimate() call needs the same family of buffers: a reserve/result
// vector, a multi-hop residue table, the HK-Push+ bound array, flattened
// walk-start arrays with their alias table, and (for the parallel
// estimators) per-thread walk accumulators. Allocating these from scratch
// per query is the dominant fixed cost of small queries; a QueryWorkspace
// owns all of them and is reset — never reallocated — between queries, so a
// steady-state query stream performs zero heap allocations (verified by the
// workspace tests with the AllocCounters hook in common/mem_tracker.h).
//
// A workspace is not thread-safe; the intended pattern is one workspace per
// serving thread (see BatchQueryEngine in hkpr/queries.h). The per-thread
// WalkScratch entries inside one workspace ARE handed to distinct pool
// threads during a single parallel estimate.

#ifndef HKPR_HKPR_WORKSPACE_H_
#define HKPR_HKPR_WORKSPACE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/alias_sampler.h"
#include "common/sparse_vector.h"
#include "graph/graph.h"
#include "hkpr/residue.h"

namespace hkpr {

/// One thread's walk-phase accumulator: end-point counts plus a step
/// counter. Lives inside a QueryWorkspace, one per participating thread.
struct WalkScratch {
  SparseVector counts;
  uint64_t steps = 0;
};

/// All scratch state one query needs, reusable across queries.
class QueryWorkspace {
 public:
  QueryWorkspace() = default;

  /// The estimate under construction. HK-Push writes the reserve here, the
  /// walk phase accumulates into it, and EstimateInto() returns a reference
  /// to it — valid until the next query on this workspace.
  SparseVector result;

  /// Residue table for the push phase; Reset() between queries.
  ResidueTable residues{0};

  /// HK-Push+ per-hop normalized-residue upper bounds.
  std::vector<double> norm_bound;

  /// Flattened positive residue entries (node, hop) and their weights, the
  /// alias sampler's input.
  std::vector<std::pair<NodeId, uint32_t>> starts;
  std::vector<double> weights;

  /// Alias table over `weights`; rebuilt (allocation-free at steady state)
  /// per query that reaches the walk phase.
  AliasSampler alias;

  /// Per-walk end nodes, written by the interleaved walk kernel (one entry
  /// per walk, indexed by walk number) and accumulated into `result` in
  /// index order afterwards — which is what makes the accumulated estimate
  /// independent of interleave width and thread partition. Capacity is
  /// retained across queries.
  std::vector<NodeId> walk_ends;

  /// Clears the single-query state. Capacities are retained.
  void PrepareQuery(uint32_t max_hop) {
    result.Clear();
    residues.Reset(max_hop);
    starts.clear();
    weights.clear();
  }

  /// Per-thread walk accumulators, cleared and ready for use. Grows to
  /// `num_threads` entries on first use and is retained afterwards. Every
  /// entry is cleared — including ones beyond `num_threads` left over from a
  /// wider earlier query — so merge loops may safely iterate the whole
  /// vector.
  std::vector<WalkScratch>& ThreadScratch(uint32_t num_threads) {
    if (thread_scratch_.size() < num_threads) {
      thread_scratch_.resize(num_threads);
    }
    for (WalkScratch& scratch : thread_scratch_) {
      scratch.counts.Clear();
      scratch.steps = 0;
    }
    return thread_scratch_;
  }

  /// Fills `starts`/`weights` from the positive entries of `residues` and
  /// builds the alias table. Returns the number of start entries.
  size_t CollectWalkStarts();

  /// Approximate heap bytes held by all buffers (for memory accounting).
  size_t MemoryBytes() const;

 private:
  std::vector<WalkScratch> thread_scratch_;
};

/// Implements the legacy by-value Estimate() contract on top of an
/// EstimateInto-style estimator: runs the query in a fresh workspace and
/// moves — not copies — the result out. Allocating per call is deliberate:
/// it keeps the legacy API's per-query memory accounting (EstimatorStats::
/// peak_bytes reflects this query's sizes, not capacities warmed by earlier
/// queries — the Figure 5 semantics) and leaves workspace reuse to callers
/// that opt in via EstimateInto.
template <typename Estimator, typename Stats>
SparseVector EstimateWithFreshWorkspace(Estimator& estimator, NodeId seed,
                                        Stats* stats) {
  QueryWorkspace ws;
  estimator.EstimateInto(seed, ws, stats);
  return std::move(ws.result);
}

}  // namespace hkpr

#endif  // HKPR_HKPR_WORKSPACE_H_
