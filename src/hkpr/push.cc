#include "hkpr/push.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace hkpr {

PushCounters HkPushInto(const Graph& graph, const HeatKernel& kernel,
                        NodeId seed, double r_max, QueryWorkspace& ws) {
  HKPR_CHECK(seed < graph.NumNodes());
  HKPR_CHECK(r_max > 0.0);
  const uint32_t max_hop = kernel.MaxHop();
  ws.PrepareQuery(max_hop);
  ws.residues.Add(0, seed, 1.0);
  PushCounters out;

  // Hop-ordered drain: residues only flow k -> k+1, so after hop k is
  // processed nothing ever re-enters it.
  for (uint32_t k = 0; k < max_hop; ++k) {
    auto& hop = ws.residues.MutableHop(k);
    // Entries appended during this hop's processing belong to hop k+1, so
    // iterating by index over the growing entry array is safe; hop k's entry
    // array itself does not grow while we process it.
    const auto& entries = hop.entries();
    for (size_t i = 0; i < entries.size(); ++i) {
      const NodeId v = entries[i].key;
      const double r = entries[i].value;
      const uint32_t d = graph.Degree(v);
      if (d == 0 || r <= r_max * d) continue;
      const double reserve_frac = kernel.ReserveFraction(k);
      ws.result.Add(v, reserve_frac * r);
      const double share = (1.0 - reserve_frac) * r / d;
      for (NodeId u : graph.Neighbors(v)) {
        ws.residues.Add(k + 1, u, share);
      }
      ws.residues.Zero(k, v);
      out.push_operations += d;
      ++out.entries_processed;
    }
  }
  return out;
}

PushCounters HkPushPlusInto(const Graph& graph, const HeatKernel& kernel,
                            NodeId seed, const HkPushPlusOptions& options,
                            QueryWorkspace& ws) {
  HKPR_CHECK(seed < graph.NumNodes());
  HKPR_CHECK(options.eps_r > 0.0 && options.delta > 0.0);
  HKPR_CHECK(options.hop_cap >= 1);
  const uint32_t cap = std::min(options.hop_cap, kernel.MaxHop());
  ws.PrepareQuery(cap);
  ws.residues.Add(0, seed, 1.0);
  PushCounters out;

  const double eps_a = options.eps_r * options.delta;
  const double threshold = eps_a / static_cast<double>(cap);

  // Increase-only upper bounds on max_v r_k[v]/d(v) per hop. Adding residue
  // raises the bound exactly; zeroing an entry leaves it stale but still an
  // upper bound, and once hop k is fully drained every surviving entry is
  // below `threshold`, so the bound is then clamped to it. The loop may
  // terminate as soon as the bound sum certifies Inequality (11).
  std::vector<double>& norm_bound = ws.norm_bound;
  norm_bound.assign(static_cast<size_t>(cap) + 1, 0.0);
  const uint32_t seed_degree = graph.Degree(seed);
  norm_bound[0] = seed_degree > 0 ? 1.0 / seed_degree : 0.0;
  double bound_total = norm_bound[0];

  for (uint32_t k = 0; k < cap; ++k) {
    auto& hop = ws.residues.MutableHop(k);
    const auto& entries = hop.entries();
    const double reserve_frac = kernel.ReserveFraction(k);
    for (size_t i = 0; i < entries.size(); ++i) {
      const NodeId v = entries[i].key;
      const double r = entries[i].value;
      const uint32_t d = graph.Degree(v);
      if (d == 0 || r <= threshold * d) continue;
      if (out.push_operations >= options.push_budget) {
        out.hit_budget = true;
        return out;
      }
      ws.result.Add(v, reserve_frac * r);
      const double share = (1.0 - reserve_frac) * r / d;
      for (NodeId u : graph.Neighbors(v)) {
        const double new_r = ws.residues.Add(k + 1, u, share);
        const double norm = new_r / graph.Degree(u);
        if (norm > norm_bound[k + 1]) {
          bound_total += norm - norm_bound[k + 1];
          norm_bound[k + 1] = norm;
        }
      }
      ws.residues.Zero(k, v);
      out.push_operations += d;
      ++out.entries_processed;

      if (options.enable_early_exit && bound_total <= eps_a) {
        out.hit_absolute_target = true;
        return out;
      }
    }
    // Hop k drained: all remaining residues here are below threshold*d(v).
    if (norm_bound[k] > threshold) {
      bound_total -= norm_bound[k] - threshold;
      norm_bound[k] = threshold;
    }
    if (options.enable_early_exit && bound_total <= eps_a) {
      out.hit_absolute_target = true;
      return out;
    }
  }
  return out;
}

namespace {

PushResult ToPushResult(QueryWorkspace&& ws, const PushCounters& counters) {
  PushResult out{std::move(ws.result), std::move(ws.residues)};
  out.push_operations = counters.push_operations;
  out.entries_processed = counters.entries_processed;
  out.hit_absolute_target = counters.hit_absolute_target;
  out.hit_budget = counters.hit_budget;
  return out;
}

}  // namespace

PushResult HkPush(const Graph& graph, const HeatKernel& kernel, NodeId seed,
                  double r_max) {
  QueryWorkspace ws;
  const PushCounters counters = HkPushInto(graph, kernel, seed, r_max, ws);
  return ToPushResult(std::move(ws), counters);
}

PushResult HkPushPlus(const Graph& graph, const HeatKernel& kernel,
                      NodeId seed, const HkPushPlusOptions& options) {
  QueryWorkspace ws;
  const PushCounters counters =
      HkPushPlusInto(graph, kernel, seed, options, ws);
  return ToPushResult(std::move(ws), counters);
}

}  // namespace hkpr
