// Interleaved random-walk kernel: memory-level parallelism for the walk phase.
//
// On graphs larger than L2 the walk phase is latency-bound: each
// RandomNeighbor is a dependent DRAM load (offsets row, then adjacency word),
// so a scalar walk loop leaves the memory pipeline idle between hops. This
// kernel keeps W independent walks in flight per worker and round-robin
// advances each one phase per visit, software-prefetching the cache lines the
// *next* visit will read (Graph::PrefetchNode / PrefetchNeighbors and the
// alias table's two-phase PrepareSample/ResolveSample). With W in-flight
// walks the dependent-load latency of one walk is hidden behind the work of
// the other W-1, turning the phase from latency-bound to bandwidth-bound.
//
// Randomness: each walk draws from its own CounterRng stream — stream i of
// WalkStreamSeed(engine seed, query epoch) — and consumes draws in the
// canonical per-walk order (alias column UniformInt, alias accept
// UniformDouble, then per hop: termination UniformDouble, neighbor
// UniformInt). Because every stream is a pure function of the walk index,
// the end node of walk i never depends on interleave width, walk-range
// partitioning, or thread scheduling: results are bit-identical across
// widths and thread counts. This is *stronger* determinism than the legacy
// scalar path, whose shared sequential Rng makes walk i depend on all walks
// before it.

#ifndef HKPR_HKPR_WALK_KERNEL_H_
#define HKPR_HKPR_WALK_KERNEL_H_

#include <cstdint>
#include <string_view>
#include <utility>

#include "common/alias_sampler.h"
#include "common/random.h"
#include "graph/graph.h"
#include "hkpr/heat_kernel.h"

namespace hkpr {

/// Which walk-phase implementation an estimator runs.
enum class WalkKernelType {
  /// Legacy path: one walk at a time off the estimator's shared sequential
  /// Rng. Kept for A/B comparison and for replaying pre-kernel results.
  kScalar,
  /// Interleaved kernel with per-walk CounterRng streams (this file).
  kInterleaved,
};

/// Hard cap on the interleave width. Past ~16 the line-fill buffers are the
/// bottleneck; 64 bounds the kernel's stack frame.
inline constexpr uint32_t kMaxWalkKernelWidth = 64;

/// Walk-phase configuration, threaded from the serving frontend through
/// BackendContext into every randomized-walk estimator.
struct WalkKernelOptions {
  WalkKernelType type = WalkKernelType::kInterleaved;
  /// In-flight walks per worker; clamped to [1, kMaxWalkKernelWidth].
  /// Width 1 degenerates to a scalar loop over the counter-RNG streams
  /// (same results as any other width, no overlap).
  uint32_t width = 8;
};

/// Below this CSR footprint a graph is treated as cache-resident: every
/// neighbor load hits LLC, prefetching buys nothing, and the interleave
/// state machine is pure overhead. EffectiveWalkWidth then drops to width 1
/// (a straight per-stream loop) — a pure execution-policy change, since the
/// kernel's output is a function of the streams alone, never the width.
inline constexpr size_t kInterleaveMinGraphBytes = size_t{4} << 20;

/// The width an estimator should actually run `options` with on `graph`:
/// options.width on DRAM-resident graphs, 1 on cache-resident ones.
inline uint32_t EffectiveWalkWidth(const Graph& graph,
                                   const WalkKernelOptions& options) {
  return graph.MemoryBytes() < kInterleaveMinGraphBytes ? 1u : options.width;
}

/// "scalar" or "interleaved".
std::string_view WalkKernelTypeName(WalkKernelType type);

/// Parses "scalar" / "interleaved" into `*out`. Returns false (leaving
/// `*out` untouched) on anything else.
bool ParseWalkKernelType(std::string_view text, WalkKernelType* out);

/// The stream family for one query: all walks of query number `epoch` on an
/// engine seeded with `engine_seed` draw from streams of this value. Mixed
/// twice so consecutive epochs share no low-bit structure.
inline uint64_t WalkStreamSeed(uint64_t engine_seed, uint64_t epoch) {
  return Mix64(engine_seed ^ Mix64(epoch + 0x9E3779B97F4A7C15ULL));
}

/// Where walks begin. With `alias` set, walk i draws an index from the alias
/// table (on its own stream) and starts at `entries[index]` = (node, hop) —
/// the TEA/TEA+ residue-guided start. With `alias` null, every walk starts
/// at (`fixed_node`, 0) — the Monte-Carlo case.
struct WalkStartSet {
  const AliasSampler* alias = nullptr;
  const std::pair<NodeId, uint32_t>* entries = nullptr;
  NodeId fixed_node = 0;
};

/// Runs walks `first_walk .. first_walk + num_walks` of the stream family
/// `stream_seed`, writing walk i's end node to `ends[i - first_walk]`.
/// Returns the total number of traversed edges; if `per_walk_steps` is
/// non-null, also records each walk's own count at the same local index.
/// Walk semantics are exactly KRandomWalk's (random_walk.cc): stop with
/// probability eta(k)/psi(k) per hop, hop cap at kernel.MaxHop(), stranded
/// (degree-0) positions stop in place.
///
/// Deterministic contract: the value of `ends[i]` depends only on
/// (stream_seed, first_walk + i, graph, kernel, starts) — never on `width`
/// or on how the walk range is partitioned across calls or threads.
uint64_t RunInterleavedWalks(const Graph& graph, const HeatKernel& kernel,
                             const WalkStartSet& starts, uint64_t stream_seed,
                             uint64_t first_walk, uint64_t num_walks,
                             NodeId* ends, uint32_t width,
                             uint32_t* per_walk_steps = nullptr);

}  // namespace hkpr

#endif  // HKPR_HKPR_WALK_KERNEL_H_
