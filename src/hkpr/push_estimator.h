// Deterministic push-only (d, eps_r, delta)-approximation.
//
// Runs HK-Push+ with an unlimited budget and the full heat-kernel hop range
// until Inequality (11) holds with eps_a = eps_r * delta; by Theorem 2 the
// reserve alone is then a valid approximation — with failure probability 0.
// This is the "no random walks at all" corner of the paper's design space:
// its cost grows like 1/(eps_r * delta) * K instead of TEA+'s budgeted
// omega*t/2, so it loses badly at small delta, which is exactly the
// trade-off the ablation benchmark quantifies.

#ifndef HKPR_HKPR_PUSH_ESTIMATOR_H_
#define HKPR_HKPR_PUSH_ESTIMATOR_H_

#include <string_view>

#include "hkpr/estimator.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/params.h"
#include "hkpr/workspace.h"

namespace hkpr {

/// Deterministic estimator: push until the absolute-error certificate holds.
class PushOnlyEstimator : public HkprEstimator, public WorkspaceEstimator {
 public:
  PushOnlyEstimator(const Graph& graph, const ApproxParams& params);

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  /// Runs the query entirely inside `ws` (reserve in `ws.result`, residues
  /// in `ws.residues`) and returns a reference to `ws.result`, valid until
  /// the next query on that workspace. Allocation-free once the workspace
  /// capacities have warmed up.
  const SparseVector& EstimateInto(NodeId seed, QueryWorkspace& ws,
                                   EstimatorStats* stats = nullptr) override;

  /// Push-only is deterministic; re-seeding is a no-op.
  void Reseed(uint64_t /*seed*/) override {}

  std::string_view name() const override { return "Push-only"; }

 private:
  const Graph& graph_;
  ApproxParams params_;
  HeatKernel kernel_;
};

}  // namespace hkpr

#endif  // HKPR_HKPR_PUSH_ESTIMATOR_H_
