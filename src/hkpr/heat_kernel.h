// Numerically-stable heat-kernel (Poisson) weight tables.
//
// Every HKPR algorithm needs eta(k) = e^{-t} t^k / k! (Equation 1) and the
// tail sums psi(k) = sum_{l >= k} eta(l) (Equation 3). This class
// precomputes both up to an adaptive cutoff K_max where the Poisson tail
// drops below a tolerance, and exposes the derived quantities used by push
// operations (eta/psi conversion fractions) and random walks (per-step
// termination probabilities, Poisson length sampling).

#ifndef HKPR_HKPR_HEAT_KERNEL_H_
#define HKPR_HKPR_HEAT_KERNEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"

namespace hkpr {

/// Precomputed eta/psi tables for a fixed heat constant t.
class HeatKernel {
 public:
  /// Builds tables for heat constant `t > 0`. `tail_tolerance` bounds the
  /// ignored Poisson tail mass: K_max is the smallest k with
  /// psi(k+1) < tail_tolerance.
  explicit HeatKernel(double t, double tail_tolerance = 1e-15);

  double t() const { return t_; }

  /// Largest hop index with non-negligible tail mass. Walks and pushes
  /// terminate deterministically beyond this hop; the induced error is below
  /// `tail_tolerance`, orders of magnitude under any eps_r*delta in use.
  uint32_t MaxHop() const { return static_cast<uint32_t>(eta_.size() - 1); }

  /// eta(k) = e^{-t} t^k / k!; zero beyond MaxHop().
  double Eta(uint32_t k) const { return k < eta_.size() ? eta_[k] : 0.0; }

  /// psi(k) = sum_{l >= k} eta(l); zero beyond MaxHop().
  double Psi(uint32_t k) const { return k < psi_.size() ? psi_[k] : 0.0; }

  /// Probability that a walk whose current hop index is k stops here:
  /// eta(k)/psi(k). Returns 1 beyond MaxHop() (deterministic termination).
  double TerminationProb(uint32_t k) const {
    if (k >= term_.size()) return 1.0;
    return term_[k];
  }

  /// The full precomputed termination-probability table, term[k] =
  /// eta(k)/psi(k) for k in [0, MaxHop()]. Walk inner loops index this span
  /// directly instead of calling TerminationProb per step.
  std::span<const double> TerminationProbs() const { return term_; }

  /// Fraction of a k-hop residue converted to reserve by a push operation.
  double ReserveFraction(uint32_t k) const { return TerminationProb(k); }

  /// Samples a Poisson(t)-distributed walk length via the precomputed CDF
  /// (inverse-transform, O(log K_max)).
  uint32_t SamplePoissonLength(Rng& rng) const;

  /// Expected walk length E[k] = t (exposed for tests).
  double ExpectedLength() const { return t_; }

 private:
  double t_;
  std::vector<double> eta_;
  std::vector<double> psi_;
  std::vector<double> cdf_;   // cdf_[k] = sum_{l <= k} eta(l)
  std::vector<double> term_;  // term_[k] = eta_[k] / psi_[k]
};

}  // namespace hkpr

#endif  // HKPR_HKPR_HEAT_KERNEL_H_
