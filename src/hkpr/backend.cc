#include "hkpr/backend.h"

#include <algorithm>
#include <utility>

#include "baselines/cluster_hkpr.h"
#include "baselines/hk_relax.h"
#include "common/logging.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/push_estimator.h"
#include "parallel/parallel_monte_carlo.h"
#include "parallel/parallel_tea_plus.h"

namespace hkpr {

uint32_t StableBackendId(std::string_view name) {
  // 32-bit FNV-1a. Not cryptographic — collisions are caught at Register().
  uint32_t h = 2166136261u;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

void EstimatorRegistry::Register(BackendInfo info) {
  HKPR_CHECK(!info.name.empty()) << "backend name must be non-empty";
  HKPR_CHECK(info.factory != nullptr)
      << "backend \"" << info.name << "\" has no factory";
  info.stable_id = StableBackendId(info.name);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    HKPR_CHECK(entry->name != info.name)
        << "backend \"" << info.name << "\" registered twice";
    HKPR_CHECK(entry->stable_id != info.stable_id)
        << "stable-id collision between backends \"" << entry->name
        << "\" and \"" << info.name << "\"";
  }
  entries_.push_back(std::make_unique<BackendInfo>(std::move(info)));
}

const BackendInfo* EstimatorRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

std::vector<std::string> EstimatorRegistry::Names() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(entries_.size());
    for (const auto& entry : entries_) names.push_back(entry->name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string EstimatorRegistry::JoinedNames(std::string_view separator) const {
  std::string joined;
  for (const std::string& name : Names()) {
    if (!joined.empty()) joined += separator;
    joined += name;
  }
  return joined;
}

std::unique_ptr<WorkspaceEstimator> EstimatorRegistry::Create(
    std::string_view name, const Graph& graph, const ApproxParams& params,
    uint64_t seed, const BackendContext& context) const {
  const BackendInfo* info = Find(name);
  HKPR_CHECK(info != nullptr) << "unknown estimator backend \"" << name
                              << "\" (see EstimatorRegistry::Names())";
  return info->factory(graph, params, seed, context);
}

namespace {

double HkRelaxEpsA(const ApproxParams& params, const BackendContext& context) {
  return context.hk_relax_eps_a > 0.0 ? context.hk_relax_eps_a
                                      : params.eps_r * params.delta;
}

void RegisterBuiltins(EstimatorRegistry* registry) {
  registry->Register(BackendInfo{
      .name = "tea+",
      .algorithm = "TEA+ (Algorithm 5): budgeted HK-Push+ with residue "
                   "reduction, then residue-guided walks",
      .randomized = true,
      .factory = [](const Graph& graph, const ApproxParams& params,
                    uint64_t seed, const BackendContext& ctx) {
        TeaPlusOptions options = ctx.tea_plus;
        options.walk_kernel = ctx.walk_kernel;
        return std::unique_ptr<WorkspaceEstimator>(new TeaPlusEstimator(
            graph, params, seed, options, ctx.pf_prime));
      }});

  registry->Register(BackendInfo{
      .name = "tea",
      .algorithm = "TEA (Algorithm 3): HK-Push, then residue-guided walks",
      .randomized = true,
      .factory = [](const Graph& graph, const ApproxParams& params,
                    uint64_t seed, const BackendContext& ctx) {
        TeaOptions options = ctx.tea;
        options.walk_kernel = ctx.walk_kernel;
        return std::unique_ptr<WorkspaceEstimator>(
            new TeaEstimator(graph, params, seed, options, ctx.pf_prime));
      }});

  registry->Register(BackendInfo{
      .name = "monte-carlo",
      .algorithm = "pure Monte-Carlo (Section 3, Chung & Simpson 2015): "
                   "omega heat-kernel walks from the seed",
      .randomized = true,
      .factory = [](const Graph& graph, const ApproxParams& params,
                    uint64_t seed, const BackendContext& ctx) {
        return std::unique_ptr<WorkspaceEstimator>(new MonteCarloEstimator(
            graph, params, seed, ctx.pf_prime, ctx.walk_kernel));
      }});

  registry->Register(BackendInfo{
      .name = "push",
      .algorithm = "deterministic push-only: HK-Push+ with unlimited budget "
                   "until Inequality (11) certifies",
      .randomized = false,
      .factory = [](const Graph& graph, const ApproxParams& params,
                    uint64_t /*seed*/, const BackendContext& /*ctx*/) {
        return std::unique_ptr<WorkspaceEstimator>(
            new PushOnlyEstimator(graph, params));
      }});

  registry->Register(BackendInfo{
      .name = "hk-relax",
      .algorithm = "HK-Relax (Kloster & Gleich 2014): deterministic "
                   "queue-driven relaxation of the Taylor residuals",
      .randomized = false,
      .factory = [](const Graph& graph, const ApproxParams& params,
                    uint64_t /*seed*/, const BackendContext& ctx) {
        HkRelaxOptions options;
        options.t = params.t;
        options.eps_a = HkRelaxEpsA(params, ctx);
        return std::unique_ptr<WorkspaceEstimator>(
            new HkRelaxEstimator(graph, options));
      }});

  registry->Register(BackendInfo{
      .name = "cluster-hkpr",
      .algorithm = "ClusterHKPR (Chung & Simpson 2014): pure walks with the "
                   "16 log(n)/eps^3 count, eps = eps_r",
      .randomized = true,
      .factory = [](const Graph& graph, const ApproxParams& params,
                    uint64_t seed, const BackendContext& /*ctx*/) {
        // The baseline's own accuracy knob is the (1+eps)/eps guarantee's
        // eps; the shared eps_r plays that role. Walk counts come from the
        // Chung-Simpson formula, not omega, so p'_f is not consumed.
        ClusterHkprOptions options;
        options.t = params.t;
        options.eps = params.eps_r;
        return std::unique_ptr<WorkspaceEstimator>(
            new ClusterHkprEstimator(graph, options, seed));
      }});

  registry->Register(BackendInfo{
      .name = "tea+-par",
      .algorithm = "TEA+ with the walk phase sharded over threads "
                   "(context.parallel_threads / context.pool)",
      .randomized = true,
      .factory = [](const Graph& graph, const ApproxParams& params,
                    uint64_t seed, const BackendContext& ctx) {
        TeaPlusOptions options = ctx.tea_plus;
        options.walk_kernel = ctx.walk_kernel;
        return std::unique_ptr<WorkspaceEstimator>(
            new ParallelTeaPlusEstimator(graph, params, seed,
                                         ctx.parallel_threads, options,
                                         ctx.pool, ctx.pf_prime));
      }});

  registry->Register(BackendInfo{
      .name = "monte-carlo-par",
      .algorithm = "Monte-Carlo with the walk workload sharded over threads "
                   "(context.parallel_threads / context.pool)",
      .randomized = true,
      .factory = [](const Graph& graph, const ApproxParams& params,
                    uint64_t seed, const BackendContext& ctx) {
        return std::unique_ptr<WorkspaceEstimator>(
            new ParallelMonteCarloEstimator(graph, params, seed,
                                            ctx.parallel_threads, ctx.pool,
                                            ctx.pf_prime, ctx.walk_kernel));
      }});
}

}  // namespace

EstimatorRegistry& EstimatorRegistry::Global() {
  static EstimatorRegistry* registry = [] {
    auto* r = new EstimatorRegistry();  // leaked: lives until process exit
    RegisterBuiltins(r);
    return r;
  }();
  return *registry;
}

BackendSpec ResolvedSpec(const BackendSpec& spec, const Graph& graph,
                         const ApproxParams& params) {
  const BackendInfo* info = EstimatorRegistry::Global().Find(spec.name);
  HKPR_CHECK(info != nullptr) << "unknown estimator backend \"" << spec.name
                              << "\" (see EstimatorRegistry::Names())";
  BackendSpec resolved = spec;
  if (info->randomized && resolved.context.pf_prime < 0.0) {
    resolved.context.pf_prime = ComputePfPrime(graph, params.p_f);
  }
  return resolved;
}

void CheckPoolUnsharedAcrossWorkers(const BackendSpec& spec,
                                    uint32_t worker_count) {
  HKPR_CHECK(worker_count <= 1 || spec.context.pool == nullptr)
      << "BackendContext::pool cannot be shared across " << worker_count
      << " concurrently-computing executors (a ThreadPool accepts external "
         "submissions from one thread at a time); leave it null — parallel "
         "backends then spawn walk threads per call";
}

}  // namespace hkpr
