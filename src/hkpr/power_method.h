// Exact (to machine precision) HKPR via dense power iteration.
//
// Used as ground truth for accuracy experiments (Figure 6) and tests, as in
// the paper's Section 7.5 ("apply the power method with 40 iterations to
// compute the ground-truth normalized HKPR values").

#ifndef HKPR_HKPR_POWER_METHOD_H_
#define HKPR_HKPR_POWER_METHOD_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "hkpr/heat_kernel.h"

namespace hkpr {

/// Computes the dense HKPR vector rho_s = sum_k eta(k) * P^k[s, .] by
/// iterating x <- x P and accumulating. Runs kernel.MaxHop() iterations,
/// i.e. until the ignored Poisson tail is below the kernel's tolerance.
/// O(MaxHop * m) time, O(n) space.
std::vector<double> ExactHkpr(const Graph& graph, const HeatKernel& kernel,
                              NodeId seed);

/// Convenience overload constructing the kernel from `t`.
std::vector<double> ExactHkpr(const Graph& graph, double t, NodeId seed);

/// Degree-normalizes a dense HKPR vector in place: rho[v] /= d(v)
/// (isolated nodes keep value 0).
void NormalizeByDegree(const Graph& graph, std::vector<double>& rho);

}  // namespace hkpr

#endif  // HKPR_HKPR_POWER_METHOD_H_
