// Deterministic graph-traversal phase: HK-Push (Algorithm 1) and
// HK-Push+ (Algorithm 4).
//
// Both algorithms start from r_0[s] = 1 and repeatedly convert a (node, hop)
// residue entry: an eta(k)/psi(k) fraction becomes reserve at the node, the
// remainder is split evenly over the node's neighbors at hop k+1. Residue
// mass only moves forward in hop index, so draining hops in ascending order
// processes each entry at most once — this is how the "while exists (v,k)
// above threshold" loops are realized.

#ifndef HKPR_HKPR_PUSH_H_
#define HKPR_HKPR_PUSH_H_

#include <cstdint>

#include "common/sparse_vector.h"
#include "graph/graph.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/residue.h"
#include "hkpr/workspace.h"

namespace hkpr {

/// Output of a push phase: the reserve vector q_s (a lower bound on rho_s,
/// Lemma 1) plus the residue table the random-walk phase consumes.
struct PushResult {
  SparseVector reserve;
  ResidueTable residues;
  /// Push operations, one per neighbor update (paper's accounting).
  uint64_t push_operations = 0;
  /// (node, hop) entries converted.
  uint64_t entries_processed = 0;
  /// HK-Push+ only: true when the early-exit test (Inequality 11 with
  /// eps_a = eps_r * delta) triggered inside the loop.
  bool hit_absolute_target = false;
  /// HK-Push+ only: true when the push budget n_p was exhausted.
  bool hit_budget = false;
};

/// Algorithm 1: pushes every (v, k) entry whose residue exceeds
/// r_max * d(v), for hops 0..kernel.MaxHop()-1. Residue parked at the final
/// hop is left for the walk phase (walks there terminate immediately).
PushResult HkPush(const Graph& graph, const HeatKernel& kernel, NodeId seed,
                  double r_max);

/// Options of HK-Push+ (Algorithm 4).
struct HkPushPlusOptions {
  /// Relative error threshold eps_r.
  double eps_r = 0.5;
  /// Significance threshold delta.
  double delta = 1e-6;
  /// Hop cap K; pushes occur only at hops k < K (see ChooseHopCap).
  uint32_t hop_cap = 10;
  /// Push-operation budget n_p; the loop stops once this many neighbor
  /// updates have been performed.
  uint64_t push_budget = 1'000'000;
  /// Enables the in-loop early-exit test on the residue bound (Line 6).
  /// Disabled only by the ablation benchmark.
  bool enable_early_exit = true;
};

/// Algorithm 4: pushes entries with residue above (eps_r*delta/K) * d(v) at
/// hops k < K, stopping early when the push budget is exhausted or when an
/// increase-only upper bound on sum_k max_v r_k[v]/d(v) certifies
/// Inequality (11) with eps_a = eps_r * delta.
PushResult HkPushPlus(const Graph& graph, const HeatKernel& kernel,
                      NodeId seed, const HkPushPlusOptions& options);

/// Work counters of a workspace-based push phase. Plain value type so the
/// allocation-free entry points below have nothing to heap-allocate.
struct PushCounters {
  uint64_t push_operations = 0;
  uint64_t entries_processed = 0;
  bool hit_absolute_target = false;
  bool hit_budget = false;
};

/// Algorithm 1 into a reusable workspace: the reserve is accumulated into
/// `ws.result` (cleared first) and the residues into `ws.residues`.
/// Allocation-free once the workspace capacities have warmed up.
PushCounters HkPushInto(const Graph& graph, const HeatKernel& kernel,
                        NodeId seed, double r_max, QueryWorkspace& ws);

/// Algorithm 4 into a reusable workspace; see HkPushInto.
PushCounters HkPushPlusInto(const Graph& graph, const HeatKernel& kernel,
                            NodeId seed, const HkPushPlusOptions& options,
                            QueryWorkspace& ws);

}  // namespace hkpr

#endif  // HKPR_HKPR_PUSH_H_
