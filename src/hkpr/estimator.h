// Common interface for approximate HKPR estimators.

#ifndef HKPR_HKPR_ESTIMATOR_H_
#define HKPR_HKPR_ESTIMATOR_H_

#include <cstdint>
#include <string_view>

#include "common/sparse_vector.h"
#include "graph/graph.h"

namespace hkpr {

/// Work counters reported by one Estimate() call. Benchmarks use these to
/// reproduce the paper's cost analyses (push/walk balance, Figure 5 memory).
struct EstimatorStats {
  /// Push operations, counted as in the paper: one per neighbor update
  /// (a (v,k) entry conversion costs d(v) push operations).
  uint64_t push_operations = 0;
  /// Number of (node, hop) residue entries converted.
  uint64_t entries_processed = 0;
  /// Random walks performed.
  uint64_t num_walks = 0;
  /// Total steps over all random walks.
  uint64_t walk_steps = 0;
  /// True when TEA+ returned the push result directly (Inequality 11 held).
  bool early_exit = false;
  /// Peak logical bytes of algorithm state (excludes the input graph).
  size_t peak_bytes = 0;

  void Reset() { *this = EstimatorStats{}; }
};

/// An algorithm that estimates the HKPR vector of a seed node.
///
/// Implementations are constructed with a graph reference (which must outlive
/// the estimator) and their parameters; Estimate() may be called repeatedly
/// with different seeds. Estimators are deterministic given their
/// construction-time RNG seed and the sequence of calls.
class HkprEstimator {
 public:
  virtual ~HkprEstimator() = default;

  /// Computes an approximate HKPR vector for `seed`. When `stats` is
  /// non-null it is reset and filled with this call's work counters.
  virtual SparseVector Estimate(NodeId seed, EstimatorStats* stats) = 0;

  /// Convenience overload without stats.
  SparseVector Estimate(NodeId seed) { return Estimate(seed, nullptr); }

  /// Short algorithm name for reports ("TEA+", "HK-Relax", ...).
  virtual std::string_view name() const = 0;
};

class QueryWorkspace;

/// The serving-backend contract: an estimator that runs queries inside a
/// caller-provided reusable QueryWorkspace and whose randomness can be
/// re-seeded between queries. Every estimator that implements this can be
/// registered as a named backend (hkpr/backend.h) and served through
/// QueryExecutor / BatchQueryEngine / AsyncQueryService interchangeably.
///
/// Contract:
///  - EstimateInto() runs the query entirely inside `ws` and returns a
///    reference to `ws.result`, valid until the next query on that
///    workspace. Once the workspace capacities have warmed up, repeated
///    queries perform zero heap allocations.
///  - Reseed(s) makes subsequent queries replay the randomness of a freshly
///    constructed estimator with seed `s`. Deterministic estimators
///    implement it as a no-op, which preserves the serving layers'
///    bit-identical-per-(engine seed, query index) guarantee trivially.
class WorkspaceEstimator {
 public:
  virtual ~WorkspaceEstimator() = default;

  /// Runs the query inside `ws`; the returned reference points at
  /// `ws.result`. When `stats` is non-null it is reset and filled.
  virtual const SparseVector& EstimateInto(NodeId seed, QueryWorkspace& ws,
                                           EstimatorStats* stats = nullptr) = 0;

  /// Re-seeds the estimator's RNG stream (no-op when deterministic).
  virtual void Reseed(uint64_t seed) = 0;

  /// Short algorithm name for reports ("TEA+", "HK-Relax", ...).
  virtual std::string_view name() const = 0;
};

}  // namespace hkpr

#endif  // HKPR_HKPR_ESTIMATOR_H_
