// TEA (Algorithm 3): HK-Push followed by residue-guided random walks.

#ifndef HKPR_HKPR_TEA_H_
#define HKPR_HKPR_TEA_H_

#include <string_view>

#include "common/random.h"
#include "hkpr/estimator.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/params.h"
#include "hkpr/walk_kernel.h"
#include "hkpr/workspace.h"

namespace hkpr {

/// Tuning options of TEA beyond the accuracy parameters.
struct TeaOptions {
  /// The residue threshold is r_max = r_max_scale / (omega * t); the paper
  /// sets r_max = O(1/(omega t)) and tunes the constant per dataset to
  /// balance push and walk cost (Section 7.3). 1.0 is a solid default.
  double r_max_scale = 1.0;
  /// Walk-phase implementation (hkpr/walk_kernel.h): the interleaved kernel
  /// by default, the legacy scalar loop for A/B comparison.
  WalkKernelOptions walk_kernel;
};

/// Two-phase heat kernel approximation, first-cut version.
///
/// Runs HK-Push with threshold r_max to get a reserve vector q_s and residue
/// vectors, then draws alpha*omega walks whose start entries (u, k) are
/// sampled from the residues through an alias structure, adding alpha/n_r
/// per walk end-point (Theorem 1 guarantees (d,eps_r,delta)-approximation
/// with probability >= 1 - p_f).
class TeaEstimator : public HkprEstimator, public WorkspaceEstimator {
 public:
  /// `pf_prime` is the precomputed Equation-(6) value for `params.p_f`;
  /// negative (the default) computes it here — pass it so callers building
  /// many estimators over one graph scan it once (cf. TeaPlusEstimator).
  TeaEstimator(const Graph& graph, const ApproxParams& params, uint64_t seed,
               const TeaOptions& options = TeaOptions(),
               double pf_prime = -1.0);

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  /// Runs the query entirely inside `ws` and returns a reference to
  /// `ws.result` (valid until the next query on that workspace).
  /// Allocation-free once the workspace capacities have warmed up.
  const SparseVector& EstimateInto(NodeId seed, QueryWorkspace& ws,
                                   EstimatorStats* stats = nullptr) override;

  /// Re-seeds the walk-phase randomness (the scalar Rng and the interleaved
  /// kernel's stream derivation); queries after a Reseed(s) replay the same
  /// randomness as a freshly constructed estimator with seed `s`.
  void Reseed(uint64_t seed) override {
    rng_.Reseed(seed);
    seed_ = seed;
    epoch_ = 0;
  }

  std::string_view name() const override { return "TEA"; }

  /// The omega (walk-count scale) this estimator computed from its params.
  double omega() const { return omega_; }
  /// The push threshold in use.
  double r_max() const { return r_max_; }

 private:
  const Graph& graph_;
  ApproxParams params_;
  TeaOptions options_;
  HeatKernel kernel_;
  double omega_;
  double r_max_;
  Rng rng_;            // scalar walk path
  uint64_t seed_;      // stream-family seed for the interleaved kernel
  uint64_t epoch_ = 0;  // advances per query so repeated queries differ
};

}  // namespace hkpr

#endif  // HKPR_HKPR_TEA_H_
