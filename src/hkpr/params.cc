#include "hkpr/params.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hkpr {

double ComputePfPrime(const Graph& graph, double p_f) {
  HKPR_CHECK(p_f > 0.0 && p_f < 1.0);
  const double log_pf = std::log(p_f);
  long double sum = 0.0L;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    const uint32_t d = graph.Degree(v);
    if (d == 0) continue;  // isolated nodes cannot violate the guarantee
    // p_f^(d-1); underflows to 0 for large degrees, which is exact enough.
    sum += std::exp(static_cast<double>(d - 1) * log_pf);
  }
  if (sum <= 1.0L) return p_f;
  return p_f / static_cast<double>(sum);
}

double OmegaTea(const ApproxParams& params, double pf_prime) {
  HKPR_CHECK(params.eps_r > 0.0 && params.delta > 0.0);
  HKPR_CHECK(pf_prime > 0.0 && pf_prime < 1.0);
  return 2.0 * (1.0 + params.eps_r / 3.0) * std::log(1.0 / pf_prime) /
         (params.eps_r * params.eps_r * params.delta);
}

double OmegaTeaPlus(const ApproxParams& params, double pf_prime) {
  HKPR_CHECK(params.eps_r > 0.0 && params.delta > 0.0);
  HKPR_CHECK(pf_prime > 0.0 && pf_prime < 1.0);
  return 8.0 * (1.0 + params.eps_r / 6.0) * std::log(1.0 / pf_prime) /
         (params.eps_r * params.eps_r * params.delta);
}

uint32_t ChooseHopCap(double c, const ApproxParams& params, double avg_degree,
                      uint32_t max_hop) {
  HKPR_CHECK(c > 0.0);
  const double log_deg = std::log(std::max(avg_degree, std::exp(1.0)));
  const double raw =
      c * std::log(1.0 / (params.eps_r * params.delta)) / log_deg;
  const uint32_t k = static_cast<uint32_t>(std::ceil(raw));
  return std::clamp<uint32_t>(k, 1, max_hop);
}

}  // namespace hkpr
