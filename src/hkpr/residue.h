// Multi-hop residue storage for HK-Push / HK-Push+.
//
// Unlike personalized-PageRank push methods (FORA et al.), heat-kernel push
// must keep residues generated at different hop counts separate, because the
// conditional stopping distribution h_u^(k) depends on k (the
// non-Markovianness discussed in Section 6). ResidueTable is that per-hop
// sparse storage plus the running aggregates TEA/TEA+ need: per-hop sums
// (for beta_k and alpha) and the total.
//
// A table can be Reset() and reused across queries: hop storage only ever
// grows, and the per-hop maps keep their capacity through clears, so a
// steady-state query sequence performs no heap allocations here.

#ifndef HKPR_HKPR_RESIDUE_H_
#define HKPR_HKPR_RESIDUE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "graph/graph.h"

namespace hkpr {

/// Sparse residue vectors r_s^(0..max_hop) with maintained hop sums.
class ResidueTable {
 public:
  /// Creates empty residue vectors for hops 0..max_hop inclusive.
  explicit ResidueTable(uint32_t max_hop) { Reset(max_hop); }

  /// Clears the table and re-dimensions it for hops 0..max_hop inclusive.
  /// Storage is retained (and only grows), so repeated Reset/fill cycles on
  /// one table are allocation-free once capacities have warmed up.
  void Reset(uint32_t max_hop) {
    const size_t needed = static_cast<size_t>(max_hop) + 1;
    if (hops_.size() < needed) hops_.resize(needed);
    num_hops_ = needed;
    for (auto& hop : hops_) hop.Clear();
    hop_sum_.assign(hops_.size(), 0.0);
  }

  uint32_t max_hop() const { return static_cast<uint32_t>(num_hops_ - 1); }

  /// Current residue r_k[v] (0 if absent).
  double Get(uint32_t k, NodeId v) const { return hops_[k].GetOr(v, 0.0); }

  /// Adds `delta` to r_k[v]; returns the new value.
  double Add(uint32_t k, NodeId v, double delta) {
    double& slot = hops_[k][v];
    slot += delta;
    hop_sum_[k] += delta;
    return slot;
  }

  /// Sets r_k[v] to zero (the entry remains allocated with value 0).
  void Zero(uint32_t k, NodeId v) {
    double* slot = hops_[k].Find(v);
    if (slot != nullptr) {
      hop_sum_[k] -= *slot;
      *slot = 0.0;
    }
  }

  /// Sum of residues at hop k (maintained incrementally; see RecomputeSums
  /// for use after bulk mutation).
  double HopSum(uint32_t k) const { return hop_sum_[k]; }

  /// alpha = sum over all hops and nodes of the residues.
  double TotalSum() const {
    double s = 0.0;
    for (size_t k = 0; k < num_hops_; ++k) s += hop_sum_[k];
    return s;
  }

  const FlatMap<double>& Hop(uint32_t k) const { return hops_[k]; }
  FlatMap<double>& MutableHop(uint32_t k) { return hops_[k]; }

  /// Recomputes hop sums by scanning entries; call after mutating residues
  /// directly through MutableHop (e.g. TEA+'s residue reduction).
  void RecomputeSums() {
    for (size_t k = 0; k < num_hops_; ++k) {
      double s = 0.0;
      for (const auto& e : hops_[k].entries()) s += e.value;
      hop_sum_[k] = s;
    }
  }

  /// Exact sum over hops of max_v r_k[v]/d(v) — the left side of
  /// Inequality (11) / TEA+'s Line 7 test. O(total entries).
  double MaxNormalizedResidueSum(const Graph& graph) const {
    double total = 0.0;
    for (size_t k = 0; k < num_hops_; ++k) {
      double best = 0.0;
      for (const auto& e : hops_[k].entries()) {
        if (e.value <= 0.0) continue;
        const double norm = e.value / graph.Degree(e.key);
        if (norm > best) best = norm;
      }
      total += best;
    }
    return total;
  }

  /// Number of stored entries across hops (including zeroed slots).
  size_t TotalEntries() const {
    size_t n = 0;
    for (size_t k = 0; k < num_hops_; ++k) n += hops_[k].size();
    return n;
  }

  /// Number of entries with a strictly positive residue.
  size_t TotalNonZeros() const {
    size_t n = 0;
    for (size_t k = 0; k < num_hops_; ++k) {
      for (const auto& e : hops_[k].entries()) {
        if (e.value > 0.0) ++n;
      }
    }
    return n;
  }

  size_t MemoryBytes() const {
    size_t b = hop_sum_.capacity() * sizeof(double);
    for (const auto& hop : hops_) b += hop.MemoryBytes();
    return b;
  }

 private:
  std::vector<FlatMap<double>> hops_;  // may exceed num_hops_ after Reset
  std::vector<double> hop_sum_;
  size_t num_hops_ = 1;
};

}  // namespace hkpr

#endif  // HKPR_HKPR_RESIDUE_H_
