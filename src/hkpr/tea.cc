#include "hkpr/tea.h"

#include <cmath>

#include "common/logging.h"
#include "hkpr/push.h"
#include "hkpr/random_walk.h"

namespace hkpr {

TeaEstimator::TeaEstimator(const Graph& graph, const ApproxParams& params,
                           uint64_t seed, const TeaOptions& options,
                           double pf_prime)
    : graph_(graph),
      params_(params),
      options_(options),
      kernel_(params.t),
      rng_(seed),
      seed_(seed) {
  if (pf_prime < 0.0) pf_prime = ComputePfPrime(graph, params.p_f);
  omega_ = OmegaTea(params, pf_prime);
  HKPR_CHECK(options.r_max_scale > 0.0);
  r_max_ = options.r_max_scale / (omega_ * params.t);
}

SparseVector TeaEstimator::Estimate(NodeId seed, EstimatorStats* stats) {
  return EstimateWithFreshWorkspace(*this, seed, stats);
}

const SparseVector& TeaEstimator::EstimateInto(NodeId seed, QueryWorkspace& ws,
                                               EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();
  const uint64_t epoch = epoch_++;

  // Phase 1: deterministic traversal.
  const PushCounters push = HkPushInto(graph_, kernel_, seed, r_max_, ws);
  SparseVector& rho = ws.result;

  // Phase 2: refine with residue-guided walks.
  const double alpha = ws.residues.TotalSum();
  const uint64_t num_walks =
      alpha > 0.0 ? static_cast<uint64_t>(std::ceil(alpha * omega_)) : 0;
  uint64_t steps = 0;
  size_t alias_bytes = 0;
  if (num_walks > 0) {
    ws.CollectWalkStarts();
    alias_bytes = ws.alias.MemoryBytes() +
                  ws.starts.capacity() * sizeof(ws.starts[0]) +
                  ws.weights.capacity() * sizeof(double);
    const double increment = alpha / static_cast<double>(num_walks);
    if (options_.walk_kernel.type == WalkKernelType::kScalar) {
      for (uint64_t i = 0; i < num_walks; ++i) {
        const auto [u, k] = ws.starts[ws.alias.Sample(rng_)];
        const NodeId end = KRandomWalk(graph_, kernel_, u, k, rng_, &steps);
        rho.Add(end, increment);
      }
    } else {
      ws.walk_ends.resize(num_walks);
      const WalkStartSet start_set{&ws.alias, ws.starts.data(), 0};
      steps = RunInterleavedWalks(graph_, kernel_, start_set,
                                  WalkStreamSeed(seed_, epoch), 0, num_walks,
                                  ws.walk_ends.data(),
                                  EffectiveWalkWidth(graph_, options_.walk_kernel));
      for (uint64_t i = 0; i < num_walks; ++i) {
        rho.Add(ws.walk_ends[i], increment);
      }
      alias_bytes += ws.walk_ends.capacity() * sizeof(NodeId);
    }
  }

  if (stats != nullptr) {
    stats->push_operations = push.push_operations;
    stats->entries_processed = push.entries_processed;
    stats->num_walks = num_walks;
    stats->walk_steps = steps;
    stats->peak_bytes =
        ws.residues.MemoryBytes() + rho.MemoryBytes() + alias_bytes;
  }
  return rho;
}

}  // namespace hkpr
