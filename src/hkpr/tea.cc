#include "hkpr/tea.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/alias_sampler.h"
#include "common/logging.h"
#include "hkpr/push.h"
#include "hkpr/random_walk.h"

namespace hkpr {

namespace {

/// Flattened positive residue entries, ready for alias sampling.
struct WalkStarts {
  std::vector<std::pair<NodeId, uint32_t>> entries;  // (node, hop)
  std::vector<double> weights;

  size_t MemoryBytes() const {
    return entries.capacity() * sizeof(entries[0]) +
           weights.capacity() * sizeof(double);
  }
};

WalkStarts CollectWalkStarts(const ResidueTable& residues) {
  WalkStarts out;
  out.entries.reserve(residues.TotalNonZeros());
  out.weights.reserve(residues.TotalNonZeros());
  for (uint32_t k = 0; k <= residues.max_hop(); ++k) {
    for (const auto& e : residues.Hop(k).entries()) {
      if (e.value > 0.0) {
        out.entries.emplace_back(e.key, k);
        out.weights.push_back(e.value);
      }
    }
  }
  return out;
}

}  // namespace

TeaEstimator::TeaEstimator(const Graph& graph, const ApproxParams& params,
                           uint64_t seed, const TeaOptions& options)
    : graph_(graph), params_(params), kernel_(params.t), rng_(seed) {
  const double pf_prime = ComputePfPrime(graph, params.p_f);
  omega_ = OmegaTea(params, pf_prime);
  HKPR_CHECK(options.r_max_scale > 0.0);
  r_max_ = options.r_max_scale / (omega_ * params.t);
}

SparseVector TeaEstimator::Estimate(NodeId seed, EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();

  // Phase 1: deterministic traversal.
  PushResult push = HkPush(graph_, kernel_, seed, r_max_);
  SparseVector rho = std::move(push.reserve);

  // Phase 2: refine with residue-guided walks.
  const double alpha = push.residues.TotalSum();
  const uint64_t num_walks =
      alpha > 0.0 ? static_cast<uint64_t>(std::ceil(alpha * omega_)) : 0;
  uint64_t steps = 0;
  size_t alias_bytes = 0;
  if (num_walks > 0) {
    WalkStarts starts = CollectWalkStarts(push.residues);
    AliasSampler alias(starts.weights);
    alias_bytes = alias.MemoryBytes() + starts.MemoryBytes();
    const double increment = alpha / static_cast<double>(num_walks);
    for (uint64_t i = 0; i < num_walks; ++i) {
      const auto [u, k] = starts.entries[alias.Sample(rng_)];
      const NodeId end = KRandomWalk(graph_, kernel_, u, k, rng_, &steps);
      rho.Add(end, increment);
    }
  }

  if (stats != nullptr) {
    stats->push_operations = push.push_operations;
    stats->entries_processed = push.entries_processed;
    stats->num_walks = num_walks;
    stats->walk_steps = steps;
    stats->peak_bytes =
        push.residues.MemoryBytes() + rho.MemoryBytes() + alias_bytes;
  }
  return rho;
}

}  // namespace hkpr
