// TEA+ (Algorithm 5): budgeted HK-Push+ with residue reduction.

#ifndef HKPR_HKPR_TEA_PLUS_H_
#define HKPR_HKPR_TEA_PLUS_H_

#include <string_view>

#include "common/random.h"
#include "hkpr/estimator.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/params.h"
#include "hkpr/residue.h"
#include "hkpr/walk_kernel.h"
#include "hkpr/workspace.h"

namespace hkpr {

/// How TEA+ distributes the residue-reduction budget over hops.
enum class BetaMode {
  /// beta_k proportional to the hop's residue sum (the paper's choice,
  /// Algorithm 5 Line 9).
  kProportionalToHopSum,
  /// beta_k = 1/(K+1) uniformly (ablation only; shows why the paper's
  /// choice matters).
  kUniform,
};

/// Tuning options of TEA+ beyond the accuracy parameters.
struct TeaPlusOptions {
  /// Hop-cap constant: K = c * log(1/(eps_r*delta)) / log(avg_degree).
  /// The paper tunes this in Section 7.2 and settles on 2.5.
  double c = 2.5;
  /// Residue reduction before the walk phase (Lines 8-11). Disabled only by
  /// the ablation benchmark.
  bool enable_residue_reduction = true;
  /// Early termination of HK-Push+ via Inequality (11). Disabled only by the
  /// ablation benchmark.
  bool enable_early_exit = true;
  BetaMode beta_mode = BetaMode::kProportionalToHopSum;
  /// Walk-phase implementation (hkpr/walk_kernel.h): the interleaved kernel
  /// by default, the legacy scalar loop for A/B comparison.
  WalkKernelOptions walk_kernel;
};

/// The paper's flagship algorithm. Same guarantee as TEA (Theorem 3) with
/// far less practical work: HK-Push+ runs under a push budget n_p = omega*t/2
/// and a hop cap K; if the absolute-error test (11) passes the reserve is
/// returned immediately, otherwise residues are reduced by
/// beta_k * eps_r * delta * d(u) before the walk phase and the final vector
/// gets a +eps_r*delta/2 * d(v) offset (stored as a scalar, O(1)).
class TeaPlusEstimator : public HkprEstimator, public WorkspaceEstimator {
 public:
  /// `pf_prime` is the precomputed Equation-(6) value for `params.p_f`;
  /// negative (the default) computes it here. ComputePfPrime is an O(n)
  /// scan the paper notes is done once when the graph is loaded; pass it to
  /// avoid re-scanning when constructing many estimators over one graph
  /// (e.g. one per pool thread in BatchQueryEngine).
  TeaPlusEstimator(const Graph& graph, const ApproxParams& params,
                   uint64_t seed,
                   const TeaPlusOptions& options = TeaPlusOptions(),
                   double pf_prime = -1.0);

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  /// Runs the query entirely inside `ws` and returns a reference to
  /// `ws.result` (valid until the next query on that workspace).
  /// Allocation-free once the workspace capacities have warmed up.
  const SparseVector& EstimateInto(NodeId seed, QueryWorkspace& ws,
                                   EstimatorStats* stats = nullptr) override;

  /// Re-seeds the walk-phase randomness (the scalar Rng and the interleaved
  /// kernel's stream derivation); queries after a Reseed(s) replay the same
  /// randomness as a freshly constructed estimator with seed `s`.
  void Reseed(uint64_t seed) override {
    rng_.Reseed(seed);
    seed_ = seed;
    epoch_ = 0;
  }

  std::string_view name() const override { return "TEA+"; }

  double omega() const { return omega_; }
  uint32_t hop_cap() const { return hop_cap_; }
  uint64_t push_budget() const { return push_budget_; }

 private:
  const Graph& graph_;
  ApproxParams params_;
  TeaPlusOptions options_;
  HeatKernel kernel_;
  double omega_;
  uint32_t hop_cap_;
  uint64_t push_budget_;
  Rng rng_;            // scalar walk path
  uint64_t seed_;      // stream-family seed for the interleaved kernel
  uint64_t epoch_ = 0;  // advances per query so repeated queries differ
};

/// Algorithm 5 Lines 8-11, shared by the sequential and parallel TEA+:
/// lowers each residue r_k[u] by beta_k * eps_delta * d(u) (beta per
/// `options.beta_mode`) and recomputes the hop sums. No-op on an empty
/// table.
void ReduceResidues(const Graph& graph, const TeaPlusOptions& options,
                    double eps_delta, ResidueTable& residues);

}  // namespace hkpr

#endif  // HKPR_HKPR_TEA_PLUS_H_
