// TEA+ (Algorithm 5): budgeted HK-Push+ with residue reduction.

#ifndef HKPR_HKPR_TEA_PLUS_H_
#define HKPR_HKPR_TEA_PLUS_H_

#include <string_view>

#include "common/random.h"
#include "hkpr/estimator.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/params.h"

namespace hkpr {

/// How TEA+ distributes the residue-reduction budget over hops.
enum class BetaMode {
  /// beta_k proportional to the hop's residue sum (the paper's choice,
  /// Algorithm 5 Line 9).
  kProportionalToHopSum,
  /// beta_k = 1/(K+1) uniformly (ablation only; shows why the paper's
  /// choice matters).
  kUniform,
};

/// Tuning options of TEA+ beyond the accuracy parameters.
struct TeaPlusOptions {
  /// Hop-cap constant: K = c * log(1/(eps_r*delta)) / log(avg_degree).
  /// The paper tunes this in Section 7.2 and settles on 2.5.
  double c = 2.5;
  /// Residue reduction before the walk phase (Lines 8-11). Disabled only by
  /// the ablation benchmark.
  bool enable_residue_reduction = true;
  /// Early termination of HK-Push+ via Inequality (11). Disabled only by the
  /// ablation benchmark.
  bool enable_early_exit = true;
  BetaMode beta_mode = BetaMode::kProportionalToHopSum;
};

/// The paper's flagship algorithm. Same guarantee as TEA (Theorem 3) with
/// far less practical work: HK-Push+ runs under a push budget n_p = omega*t/2
/// and a hop cap K; if the absolute-error test (11) passes the reserve is
/// returned immediately, otherwise residues are reduced by
/// beta_k * eps_r * delta * d(u) before the walk phase and the final vector
/// gets a +eps_r*delta/2 * d(v) offset (stored as a scalar, O(1)).
class TeaPlusEstimator : public HkprEstimator {
 public:
  TeaPlusEstimator(const Graph& graph, const ApproxParams& params,
                   uint64_t seed,
                   const TeaPlusOptions& options = TeaPlusOptions());

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  std::string_view name() const override { return "TEA+"; }

  double omega() const { return omega_; }
  uint32_t hop_cap() const { return hop_cap_; }
  uint64_t push_budget() const { return push_budget_; }

 private:
  const Graph& graph_;
  ApproxParams params_;
  TeaPlusOptions options_;
  HeatKernel kernel_;
  double omega_;
  uint32_t hop_cap_;
  uint64_t push_budget_;
  Rng rng_;
};

}  // namespace hkpr

#endif  // HKPR_HKPR_TEA_PLUS_H_
