#include "hkpr/monte_carlo.h"

#include <cmath>

#include "common/logging.h"
#include "hkpr/random_walk.h"

namespace hkpr {

MonteCarloEstimator::MonteCarloEstimator(const Graph& graph,
                                         const ApproxParams& params,
                                         uint64_t seed, double pf_prime,
                                         const WalkKernelOptions& walk_kernel)
    : graph_(graph),
      params_(params),
      kernel_(params.t),
      walk_kernel_(walk_kernel),
      rng_(seed),
      seed_(seed) {
  if (pf_prime < 0.0) pf_prime = ComputePfPrime(graph, params.p_f);
  num_walks_ = static_cast<uint64_t>(std::ceil(OmegaTea(params, pf_prime)));
  HKPR_CHECK(num_walks_ > 0);
}

SparseVector MonteCarloEstimator::Estimate(NodeId seed, EstimatorStats* stats) {
  return EstimateWithFreshWorkspace(*this, seed, stats);
}

const SparseVector& MonteCarloEstimator::EstimateInto(NodeId seed,
                                                      QueryWorkspace& ws,
                                                      EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();
  const uint64_t epoch = epoch_++;
  ws.result.Clear();
  SparseVector& rho = ws.result;
  const double weight = 1.0 / static_cast<double>(num_walks_);
  uint64_t steps = 0;
  size_t ends_bytes = 0;
  if (walk_kernel_.type == WalkKernelType::kScalar) {
    for (uint64_t i = 0; i < num_walks_; ++i) {
      const NodeId end = KRandomWalk(graph_, kernel_, seed, 0, rng_, &steps);
      rho.Add(end, weight);
    }
  } else {
    ws.walk_ends.resize(num_walks_);
    WalkStartSet start_set;
    start_set.fixed_node = seed;
    steps = RunInterleavedWalks(graph_, kernel_, start_set,
                                WalkStreamSeed(seed_, epoch), 0, num_walks_,
                                ws.walk_ends.data(),
                                EffectiveWalkWidth(graph_, walk_kernel_));
    for (uint64_t i = 0; i < num_walks_; ++i) {
      rho.Add(ws.walk_ends[i], weight);
    }
    ends_bytes = ws.walk_ends.capacity() * sizeof(NodeId);
  }
  if (stats != nullptr) {
    stats->num_walks = num_walks_;
    stats->walk_steps = steps;
    stats->peak_bytes = rho.MemoryBytes() + ends_bytes;
  }
  return rho;
}

}  // namespace hkpr
