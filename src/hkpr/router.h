// Per-query execution plans and adaptive backend routing.
//
// The paper's central empirical result is that no single estimator
// dominates: TEA+ wins on most seeds, but deterministic push (HK-Relax
// style) is preferable at small t and for high-degree seeds, and pure
// Monte-Carlo when the residue stays concentrated near the seed. A serving
// stack that hard-wires one backend per service leaves that headroom on the
// table — and forces a full drain/rebuild to change its mind.
//
// This header makes the backend choice *per query*:
//
//  - A QueryPlan is the fully resolved identity of one computation: a
//    concrete registry backend (name + stable id) plus the effective
//    ApproxParams. Every serving layer executes plans, caches by plan, and
//    stamps results with the plan's backend — two distinct plans can never
//    share state.
//  - PlanOverrides is what a *request* may say: an explicit backend name,
//    the reserved name "auto" (route for me), and/or t / eps_r / delta
//    parameter overrides composed onto the service defaults.
//  - A RoutingPolicy fills in the backend when the request (or the service
//    default) says "auto". RuleBasedRouter is the built-in policy — a
//    threshold rule on seed degree, t and graph scale mirroring the
//    paper's findings — and the interface is deliberately tiny so a
//    learned policy can slot in later.
//
// Resolution (ResolveQueryPlan) is cheap — no graph scans — so serving
// frontends run it on every submission.

#ifndef HKPR_HKPR_ROUTER_H_
#define HKPR_HKPR_ROUTER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "graph/graph.h"
#include "hkpr/params.h"

namespace hkpr {

/// The reserved backend name that asks the router to pick: requests (and
/// service defaults) say "auto", plans never do.
inline constexpr std::string_view kAutoBackend = "auto";

/// The fully resolved identity of one HKPR computation: which registered
/// backend runs it and with which effective parameters. Never contains
/// "auto" — resolution happened before a plan exists. Executing the same
/// plan at the same (engine seed, query index) is bit-identical regardless
/// of which frontend ran it or what it executed before.
struct QueryPlan {
  /// Concrete EstimatorRegistry name ("tea+", "hk-relax", ...).
  std::string backend;
  /// The registry's collision-checked stable id for `backend` (cache-key
  /// material; see StableBackendId in hkpr/backend.h).
  uint32_t backend_id = 0;
  /// Effective parameters: service defaults with any request overrides
  /// applied.
  ApproxParams params;
};

/// What one request may override about its plan. Empty fields defer to the
/// service (or per-graph) defaults.
struct PlanOverrides {
  /// "" = use the default backend; "auto" = route adaptively; any other
  /// value must be a registered backend name.
  std::string backend;
  /// Per-request parameter overrides composed onto the default params.
  /// p_f is deliberately not overridable: p'_f (Equation 6) is an O(n)
  /// scan per distinct p_f, so it stays a service-level choice.
  std::optional<double> t;
  std::optional<double> eps_r;
  std::optional<double> delta;

  bool empty() const {
    return backend.empty() && !t.has_value() && !eps_r.has_value() &&
           !delta.has_value();
  }
};

/// `base` with the overrides' t / eps_r / delta applied.
ApproxParams ApplyParamOverrides(const ApproxParams& base,
                                 const PlanOverrides& overrides);

/// True when `params` are servable by every registered estimator: all
/// fields finite, 0 < t <= 1000 (the heat-kernel table is O(t) entries,
/// so an unbounded request could OOM the server), eps_r in (0, 1),
/// delta > 0, p_f in (0, 1). Plan resolution rejects out-of-range
/// *request* overrides with this predicate instead of letting a lazily
/// built estimator's constructor check-fail the serving process.
bool ServableParams(const ApproxParams& params);

/// The graph-scale routing features: a pure function of the snapshot, not
/// of the query. Serving layers compute this once per published snapshot
/// (AverageDegree and friends are O(1) here, but on the submission path
/// every load counts — and a learned policy may grow features that are
/// *not* O(1) to derive) and pass it into ResolveQueryPlan for every
/// request against that snapshot.
struct GraphScaleFeatures {
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;
  double avg_degree = 0.0;

  static GraphScaleFeatures Of(const Graph& graph) {
    return {graph.NumNodes(), graph.NumEdges(), graph.AverageDegree()};
  }
};

/// Everything a routing policy may look at. Kept plain-old-data (degree and
/// scale pre-extracted) so policies never need graph access and a logged
/// RoutingQuery can replay a decision offline — the shape a learned policy
/// trains on.
struct RoutingQuery {
  NodeId seed = 0;
  uint32_t seed_degree = 0;
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;
  double avg_degree = 0.0;
  /// Effective parameters (after request overrides).
  ApproxParams params;
};

/// A policy's hedging hint for one routed query: the runner-up backend
/// to fire if the chosen one runs long, and the chosen backend's
/// predicted p95 compute time (the trigger threshold). Produced by
/// RoutingPolicy::Advise; consumed by AsyncQueryService's hedged-request
/// path.
struct HedgeAdvice {
  /// Runner-up registry backend name (never "auto", never the primary).
  std::string backend;
  /// StableBackendId(backend).
  uint32_t backend_id = 0;
  /// Predicted p95 compute time of the *primary* backend, microseconds.
  /// The serving layer fires the hedge when the primary's elapsed
  /// compute exceeds this (subject to its own floor).
  double primary_p95_us = 0.0;
};

/// Picks a backend for an "auto" query. Implementations must be
/// thread-safe and must return names registered in the global
/// EstimatorRegistry (resolution re-validates and check-fails otherwise —
/// a policy bug, not an input error).
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  /// The registry backend name that should serve `query`. The returned
  /// view must stay valid for the policy's lifetime (return names stored
  /// in the policy, not temporaries).
  virtual std::string_view Route(const RoutingQuery& query) const = 0;

  /// Hedging advice for a query routed to `primary_backend_id`: which
  /// backend to fire as a backup and past what elapsed compute. The
  /// default declines — policies without a cost model (RuleBasedRouter)
  /// cannot predict a p95, so hedging is inert under them.
  virtual std::optional<HedgeAdvice> Advise(
      const RoutingQuery& query, uint32_t primary_backend_id) const {
    (void)query;
    (void)primary_backend_id;
    return std::nullopt;
  }

  /// Policy name for logs and stats ("rule-based", "learned", ...).
  virtual std::string_view name() const = 0;
};

/// Thresholds of the built-in rule policy, calibrated against this
/// codebase's *measured* per-degree-class costs on the serving benchmark
/// (bench_service, moderate-accuracy serving params):
///
///  - TEA+'s cost falls steeply with seed degree: hub seeds spread heat so
///    fast that the push phase's early-exit certificate (Inequality 11)
///    fires and the walk phase never runs, while low-degree seeds leave
///    most residue unconverted and pay the full seed-independent walk
///    budget.
///  - HK-Relax's cost is frontier-bound and roughly degree-flat.
///
/// The two curves cross near half the average degree, so the rule routes
/// *low-degree* seeds to deterministic push and keeps TEA+ — the paper's
/// headline winner — everywhere else. (The paper's own cost model argues
/// push is preferable at *high*-degree seeds; with TEA+'s early exit in
/// this implementation the measurement says otherwise. Every cut here is a
/// knob, so a deployment that measures differently can flip the rule.)
struct RuleBasedRouterOptions {
  /// At or below this t the Taylor series is short and deterministic push
  /// certifies in a few hops regardless of the seed: route to
  /// `push_backend` (Kloster & Gleich's home regime).
  double small_t = 1.0;
  /// Low-degree rule: seeds whose degree is at most `low_degree_factor` x
  /// the average degree sit below the measured TEA+/HK-Relax crossover —
  /// their push frontier is too small to drain the residue, so TEA+ pays
  /// its full walk budget while HK-Relax stays frontier-cheap. Gated at
  /// t <= `push_max_t`: the relaxation's cost explodes with long Taylor
  /// series, TEA+'s walk phase grows only linearly in t.
  double low_degree_factor = 0.5;
  double push_max_t = 8.0;
  /// Graphs this small make the Monte-Carlo walk count (omega, which
  /// scales like 1/delta ~ n) trivial; routing there skips the push
  /// machinery entirely — the residue never needs to spread.
  uint32_t small_graph_nodes = 256;
  /// Backend names the rules resolve to.
  std::string push_backend = "hk-relax";
  std::string walk_backend = "monte-carlo";
  std::string default_backend = "tea+";
};

/// The built-in rule policy: small t, or low-degree seed at moderate t ->
/// push; tiny graph -> Monte-Carlo; everything else -> TEA+.
class RuleBasedRouter : public RoutingPolicy {
 public:
  explicit RuleBasedRouter(const RuleBasedRouterOptions& options = {});

  std::string_view Route(const RoutingQuery& query) const override;
  std::string_view name() const override { return "rule-based"; }

  const RuleBasedRouterOptions& options() const { return options_; }

 private:
  RuleBasedRouterOptions options_;
};

/// The process-wide default policy (a RuleBasedRouter with default
/// thresholds); what serving layers use when no policy is configured.
const RoutingPolicy& DefaultRouter();

/// Resolves one request into a concrete QueryPlan:
///   1. effective params = `default_params` + overrides (t / eps_r / delta)
///   2. backend = overrides.backend, else `default_backend`
///   3. "auto" is replaced by `policy.Route(...)` on the seed's features
///   4. the backend name is looked up in the global EstimatorRegistry
/// Returns nullopt when the *requested* backend name is unknown or the
/// effective parameters fail ServableParams (external input — report,
/// don't abort); check-fails when the policy or the default names an
/// unregistered backend (a configuration bug; services validate their
/// default params at construction). `seed` must be a valid node of
/// `graph`.
std::optional<QueryPlan> ResolveQueryPlan(const Graph& graph, NodeId seed,
                                          std::string_view default_backend,
                                          const ApproxParams& default_params,
                                          const PlanOverrides& overrides,
                                          const RoutingPolicy& policy);

/// Same, with the snapshot-level features supplied by the caller (computed
/// once per snapshot, see GraphScaleFeatures) — the per-submission variant
/// serving layers use. Only the seed's degree is read from `graph`.
std::optional<QueryPlan> ResolveQueryPlan(const Graph& graph, NodeId seed,
                                          const GraphScaleFeatures& scale,
                                          std::string_view default_backend,
                                          const ApproxParams& default_params,
                                          const PlanOverrides& overrides,
                                          const RoutingPolicy& policy);

}  // namespace hkpr

#endif  // HKPR_HKPR_ROUTER_H_
