#include "hkpr/tea_plus.h"

#include <cmath>

#include "common/logging.h"
#include "hkpr/push.h"
#include "hkpr/random_walk.h"

namespace hkpr {

void ReduceResidues(const Graph& graph, const TeaPlusOptions& options,
                    double eps_delta, ResidueTable& residues) {
  const double total = residues.TotalSum();
  if (total <= 0.0) return;
  const uint32_t num_hops = residues.max_hop() + 1;
  for (uint32_t k = 0; k < num_hops; ++k) {
    const double beta_k = options.beta_mode == BetaMode::kProportionalToHopSum
                              ? residues.HopSum(k) / total
                              : 1.0 / static_cast<double>(num_hops);
    if (beta_k <= 0.0) continue;
    const double cut = beta_k * eps_delta;
    for (auto& e : residues.MutableHop(k).mutable_entries()) {
      if (e.value <= 0.0) continue;
      const double reduced = e.value - cut * graph.Degree(e.key);
      e.value = reduced > 0.0 ? reduced : 0.0;
    }
  }
  residues.RecomputeSums();
}

TeaPlusEstimator::TeaPlusEstimator(const Graph& graph,
                                   const ApproxParams& params, uint64_t seed,
                                   const TeaPlusOptions& options,
                                   double pf_prime)
    : graph_(graph),
      params_(params),
      options_(options),
      kernel_(params.t),
      rng_(seed),
      seed_(seed) {
  if (pf_prime < 0.0) pf_prime = ComputePfPrime(graph, params.p_f);
  omega_ = OmegaTeaPlus(params, pf_prime);
  push_budget_ = static_cast<uint64_t>(std::ceil(omega_ * params.t / 2.0));
  hop_cap_ = ChooseHopCap(options.c, params, graph.AverageDegree(),
                          kernel_.MaxHop());
}

SparseVector TeaPlusEstimator::Estimate(NodeId seed, EstimatorStats* stats) {
  return EstimateWithFreshWorkspace(*this, seed, stats);
}

const SparseVector& TeaPlusEstimator::EstimateInto(NodeId seed,
                                                   QueryWorkspace& ws,
                                                   EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();
  const double eps_delta = params_.eps_r * params_.delta;
  const uint64_t epoch = epoch_++;

  // Phase 1: budgeted push.
  HkPushPlusOptions push_options;
  push_options.eps_r = params_.eps_r;
  push_options.delta = params_.delta;
  push_options.hop_cap = hop_cap_;
  push_options.push_budget = push_budget_;
  push_options.enable_early_exit = options_.enable_early_exit;
  const PushCounters push =
      HkPushPlusInto(graph_, kernel_, seed, push_options, ws);
  SparseVector& rho = ws.result;

  if (stats != nullptr) {
    stats->push_operations = push.push_operations;
    stats->entries_processed = push.entries_processed;
  }

  // Line 7: if Inequality (11) holds with eps_a = eps_r*delta, the reserve
  // alone is a (d,eps_r,delta)-approximation (Theorem 2). The in-loop bound
  // certificate implies the exact test, so check it first (free).
  const bool absolute_ok =
      push.hit_absolute_target ||
      ws.residues.MaxNormalizedResidueSum(graph_) <= eps_delta;
  if (absolute_ok) {
    if (stats != nullptr) {
      stats->early_exit = true;
      stats->peak_bytes = ws.residues.MemoryBytes() + rho.MemoryBytes();
    }
    return rho;
  }

  // Lines 8-11: residue reduction. Each residue r_k[u] is lowered by
  // beta_k * eps_r * delta * d(u); the induced underestimation is bounded by
  // eps_r*delta*d(v) in total (Inequality 19) and recentered by the final
  // offset below.
  if (options_.enable_residue_reduction) {
    ReduceResidues(graph_, options_, eps_delta, ws.residues);
  }

  // Lines 12-17: walk phase on the reduced residues (as in TEA).
  const double alpha = ws.residues.TotalSum();
  const uint64_t num_walks =
      alpha > 0.0 ? static_cast<uint64_t>(std::ceil(alpha * omega_)) : 0;
  uint64_t steps = 0;
  size_t alias_bytes = 0;
  if (num_walks > 0) {
    ws.CollectWalkStarts();
    alias_bytes = ws.alias.MemoryBytes() +
                  ws.starts.capacity() * sizeof(ws.starts[0]) +
                  ws.weights.capacity() * sizeof(double);
    const double increment = alpha / static_cast<double>(num_walks);
    if (options_.walk_kernel.type == WalkKernelType::kScalar) {
      for (uint64_t i = 0; i < num_walks; ++i) {
        const auto [u, k] = ws.starts[ws.alias.Sample(rng_)];
        const NodeId end = KRandomWalk(graph_, kernel_, u, k, rng_, &steps);
        rho.Add(end, increment);
      }
    } else {
      ws.walk_ends.resize(num_walks);
      const WalkStartSet start_set{&ws.alias, ws.starts.data(), 0};
      steps = RunInterleavedWalks(graph_, kernel_, start_set,
                                  WalkStreamSeed(seed_, epoch), 0, num_walks,
                                  ws.walk_ends.data(),
                                  EffectiveWalkWidth(graph_, options_.walk_kernel));
      for (uint64_t i = 0; i < num_walks; ++i) {
        rho.Add(ws.walk_ends[i], increment);
      }
      alias_bytes += ws.walk_ends.capacity() * sizeof(NodeId);
    }
  }

  // Lines 18-19: recenter the reduction error. Stored as a scalar and
  // applied on access (rank-invariant for sweeps).
  if (options_.enable_residue_reduction) {
    rho.set_degree_offset(eps_delta / 2.0);
  }

  if (stats != nullptr) {
    stats->num_walks = num_walks;
    stats->walk_steps = steps;
    stats->peak_bytes =
        ws.residues.MemoryBytes() + rho.MemoryBytes() + alias_bytes;
  }
  return rho;
}

}  // namespace hkpr
