#include "hkpr/tea_plus.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/alias_sampler.h"
#include "common/logging.h"
#include "hkpr/push.h"
#include "hkpr/random_walk.h"

namespace hkpr {

TeaPlusEstimator::TeaPlusEstimator(const Graph& graph,
                                   const ApproxParams& params, uint64_t seed,
                                   const TeaPlusOptions& options)
    : graph_(graph),
      params_(params),
      options_(options),
      kernel_(params.t),
      rng_(seed) {
  const double pf_prime = ComputePfPrime(graph, params.p_f);
  omega_ = OmegaTeaPlus(params, pf_prime);
  push_budget_ = static_cast<uint64_t>(std::ceil(omega_ * params.t / 2.0));
  hop_cap_ = ChooseHopCap(options.c, params, graph.AverageDegree(),
                          kernel_.MaxHop());
}

SparseVector TeaPlusEstimator::Estimate(NodeId seed, EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();
  const double eps_delta = params_.eps_r * params_.delta;

  // Phase 1: budgeted push.
  HkPushPlusOptions push_options;
  push_options.eps_r = params_.eps_r;
  push_options.delta = params_.delta;
  push_options.hop_cap = hop_cap_;
  push_options.push_budget = push_budget_;
  push_options.enable_early_exit = options_.enable_early_exit;
  PushResult push = HkPushPlus(graph_, kernel_, seed, push_options);
  SparseVector rho = std::move(push.reserve);

  if (stats != nullptr) {
    stats->push_operations = push.push_operations;
    stats->entries_processed = push.entries_processed;
  }

  // Line 7: if Inequality (11) holds with eps_a = eps_r*delta, the reserve
  // alone is a (d,eps_r,delta)-approximation (Theorem 2). The in-loop bound
  // certificate implies the exact test, so check it first (free).
  const bool absolute_ok =
      push.hit_absolute_target ||
      push.residues.MaxNormalizedResidueSum(graph_) <= eps_delta;
  if (absolute_ok) {
    if (stats != nullptr) {
      stats->early_exit = true;
      stats->peak_bytes = push.residues.MemoryBytes() + rho.MemoryBytes();
    }
    return rho;
  }

  // Lines 8-11: residue reduction. Each residue r_k[u] is lowered by
  // beta_k * eps_r * delta * d(u); the induced underestimation is bounded by
  // eps_r*delta*d(v) in total (Inequality 19) and recentered by the final
  // offset below.
  ResidueTable& residues = push.residues;
  if (options_.enable_residue_reduction) {
    const double total = residues.TotalSum();
    if (total > 0.0) {
      const uint32_t num_hops = residues.max_hop() + 1;
      for (uint32_t k = 0; k < num_hops; ++k) {
        double beta_k;
        if (options_.beta_mode == BetaMode::kProportionalToHopSum) {
          beta_k = residues.HopSum(k) / total;
        } else {
          beta_k = 1.0 / static_cast<double>(num_hops);
        }
        if (beta_k <= 0.0) continue;
        const double cut = beta_k * eps_delta;
        for (auto& e : residues.MutableHop(k).mutable_entries()) {
          if (e.value <= 0.0) continue;
          const double reduced = e.value - cut * graph_.Degree(e.key);
          e.value = reduced > 0.0 ? reduced : 0.0;
        }
      }
      residues.RecomputeSums();
    }
  }

  // Lines 12-17: walk phase on the reduced residues (as in TEA).
  const double alpha = residues.TotalSum();
  const uint64_t num_walks =
      alpha > 0.0 ? static_cast<uint64_t>(std::ceil(alpha * omega_)) : 0;
  uint64_t steps = 0;
  size_t alias_bytes = 0;
  if (num_walks > 0) {
    std::vector<std::pair<NodeId, uint32_t>> starts;
    std::vector<double> weights;
    starts.reserve(residues.TotalNonZeros());
    weights.reserve(residues.TotalNonZeros());
    for (uint32_t k = 0; k <= residues.max_hop(); ++k) {
      for (const auto& e : residues.Hop(k).entries()) {
        if (e.value > 0.0) {
          starts.emplace_back(e.key, k);
          weights.push_back(e.value);
        }
      }
    }
    AliasSampler alias(weights);
    alias_bytes = alias.MemoryBytes() + starts.capacity() * sizeof(starts[0]) +
                  weights.capacity() * sizeof(double);
    const double increment = alpha / static_cast<double>(num_walks);
    for (uint64_t i = 0; i < num_walks; ++i) {
      const auto [u, k] = starts[alias.Sample(rng_)];
      const NodeId end = KRandomWalk(graph_, kernel_, u, k, rng_, &steps);
      rho.Add(end, increment);
    }
  }

  // Lines 18-19: recenter the reduction error. Stored as a scalar and
  // applied on access (rank-invariant for sweeps).
  if (options_.enable_residue_reduction) {
    rho.set_degree_offset(eps_delta / 2.0);
  }

  if (stats != nullptr) {
    stats->num_walks = num_walks;
    stats->walk_steps = steps;
    stats->peak_bytes =
        residues.MemoryBytes() + rho.MemoryBytes() + alias_bytes;
  }
  return rho;
}

}  // namespace hkpr
