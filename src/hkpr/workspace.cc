#include "hkpr/workspace.h"

namespace hkpr {

size_t QueryWorkspace::CollectWalkStarts() {
  starts.clear();
  weights.clear();
  const size_t nnz = residues.TotalNonZeros();
  starts.reserve(nnz);
  weights.reserve(nnz);
  for (uint32_t k = 0; k <= residues.max_hop(); ++k) {
    for (const auto& e : residues.Hop(k).entries()) {
      if (e.value > 0.0) {
        starts.emplace_back(e.key, k);
        weights.push_back(e.value);
      }
    }
  }
  if (!weights.empty()) alias.Build(weights);
  return starts.size();
}

size_t QueryWorkspace::MemoryBytes() const {
  size_t b = result.MemoryBytes() + residues.MemoryBytes() +
             norm_bound.capacity() * sizeof(double) +
             starts.capacity() * sizeof(starts[0]) +
             weights.capacity() * sizeof(double) + alias.MemoryBytes() +
             walk_ends.capacity() * sizeof(NodeId);
  for (const auto& scratch : thread_scratch_) {
    b += scratch.counts.MemoryBytes();
  }
  return b;
}

}  // namespace hkpr
