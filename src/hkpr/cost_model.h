// Online per-backend cost models and the learned routing policy.
//
// PR 5's RuleBasedRouter encodes one benchmark graph's measured
// TEA+/HK-Relax cost crossover as hand-calibrated thresholds; PR 7's
// RoutingEventLog records, for every completed query, exactly the
// features a router sees (seed degree, graph scale, effective params)
// plus the chosen backend and its measured compute time. This header
// closes the loop: fit a per-(graph, backend) regression *online* from
// drained RoutingEvents and route each query to the predicted-cheapest
// backend, so the crossover is learned per graph and re-learned after
// every hot-swap instead of being frozen into a PR.
//
//  - CostModel: one incremental ridge regression per candidate backend,
//    log-linear in the routing features (log compute_us ~ w . [1,
//    log1p(seed_degree), t, log1p(num_edges), log(eps_r)]). Observe()
//    folds drained events into per-backend normal equations and refits;
//    readers get an immutable FittedCostModel snapshot (one shared_ptr
//    copy per routing decision, no lock held while predicting). The
//    residual variance rides along, so the model predicts a p95 compute
//    time as well as a mean — the hedging trigger.
//
//  - LearnedRouter: a RoutingPolicy. Routes to the argmin predicted-cost
//    candidate once *every* candidate has enough observations; while any
//    is undertrained it falls back per-decision to RuleBasedRouter
//    (cold-start safe: a fresh model behaves exactly like "auto" does
//    today). An epsilon fraction of decisions explore a uniformly random
//    candidate — deterministically, from a counter hash — so backends
//    the current winner starves still accumulate samples and a drifted
//    model can correct itself. Advise() names the runner-up backend and
//    the chosen backend's predicted p95, which is what AsyncQueryService's
//    hedged-request path consumes.
//
// Scale adaptation: the model tracks the graph scale (n, m) of the
// events it last saw. When a drained event's scale differs by more than
// scale_change_factor (a hot-swap to a differently-shaped graph), every
// backend's accumulators are decayed by scale_decay before the event is
// folded — observation counts drop below min_observations, routing falls
// back to the rules, and the model re-fits on the new graph's events.
// No recalibration PR, no explicit reset call.
//
// Thread-safety: Observe() serializes on an internal mutex (it is called
// from MultiGraphService's background trainer, not the serving path);
// Route()/Advise()/Predict() take the mutex only to copy the current
// snapshot pointer. One CostModel/LearnedRouter instance models ONE
// graph's cost surface — MultiGraphService keeps one per graph name.

#ifndef HKPR_HKPR_COST_MODEL_H_
#define HKPR_HKPR_COST_MODEL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hkpr/router.h"
#include "service/telemetry.h"

namespace hkpr {

/// Regression feature dimension: [1, log1p(seed_degree), t,
/// log1p(num_edges), log(eps_r)]. The target is log1p(compute_us), so
/// the model is log-linear: multiplicative cost effects (degree, graph
/// size) become additive and a flat-cost backend is one intercept.
inline constexpr size_t kCostFeatureDim = 5;

using CostFeatures = std::array<double, kCostFeatureDim>;

/// The feature map, shared by training (events) and prediction (queries).
CostFeatures CostFeaturesOf(uint32_t seed_degree, uint64_t num_edges,
                            const ApproxParams& params);
CostFeatures CostFeaturesOf(const RoutingQuery& query);
CostFeatures CostFeaturesOf(const RoutingEvent& event);

struct CostModelOptions {
  /// A backend predicts (and the router trusts it) only after this many
  /// (decayed) observations; until *every* candidate reaches it the
  /// LearnedRouter falls back to the rules.
  double min_observations = 48;
  /// Ridge regularizer on the normalized normal equations — keeps the
  /// solve well-posed when features are collinear in the observed data
  /// (e.g. every event shares one t).
  double ridge_lambda = 1e-3;
  /// A drained event whose graph scale (nodes or edges) differs from the
  /// last observed scale by more than this factor triggers a decay: the
  /// graph was hot-swapped to a different shape and the old fit is stale.
  double scale_change_factor = 2.0;
  /// Multiplier applied to every backend's accumulators (including the
  /// observation counts) on a scale change. Small enough to drop counts
  /// below min_observations, so routing falls back to the rules while
  /// the model re-fits on the new graph.
  double scale_decay = 0.1;
  /// Normal quantile for the p95 prediction: p95_us = exp(mean_log +
  /// z * sigma) under the log-normal residual assumption.
  double p95_z = 1.645;
};

/// One backend's fitted regression, immutable once published.
struct FittedBackendModel {
  std::string backend;      ///< registry name
  uint32_t backend_id = 0;  ///< StableBackendId(backend)
  double observations = 0.0;  ///< decayed sample count
  bool trained = false;       ///< observations >= min_observations
  CostFeatures coef{};        ///< regression weights (log1p-us space)
  double sigma = 0.0;         ///< residual stddev (log space)

  /// Predicted mean compute time in microseconds.
  double PredictUs(const CostFeatures& x) const;
  /// Predicted p95 compute time in microseconds (log-normal tail).
  double PredictP95Us(const CostFeatures& x, double z) const;
};

/// An immutable model snapshot: what one routing decision reads.
struct FittedCostModel {
  std::vector<FittedBackendModel> backends;  ///< candidate order
  bool all_trained = false;
  /// Graph scale of the most recently observed event (0 before any).
  double ref_nodes = 0.0;
  double ref_edges = 0.0;

  const FittedBackendModel* Find(uint32_t backend_id) const;
};

/// Introspection counters alongside the fitted state (the server's
/// `router` command output).
struct CostModelSnapshot {
  std::shared_ptr<const FittedCostModel> fitted;
  uint64_t events_observed = 0;  ///< compute events folded in, lifetime
  uint64_t refits = 0;           ///< Observe() batches that refit
  uint64_t decays = 0;           ///< scale-change decays triggered
};

/// Per-backend online ridge regression over routing events.
class CostModel {
 public:
  /// `backends` are the candidate registry names (must be registered —
  /// their stable ids key the event match). Check-fails on empty or
  /// unregistered candidates: a misconfigured model dies at
  /// construction, not on the first drained batch.
  CostModel(std::vector<std::string> backends,
            const CostModelOptions& options);

  /// Folds drained events into the per-backend accumulators and refits.
  /// Only events that actually computed (cache outcome miss/none) train;
  /// hits and coalesced waits carry no compute signal. Events for
  /// backends outside the candidate set are ignored.
  void Observe(std::span<const RoutingEvent> events);

  /// The current immutable fit (never null; a fresh model is all
  /// untrained). One mutex-guarded pointer copy.
  std::shared_ptr<const FittedCostModel> Current() const;

  /// True when every candidate backend is trained.
  bool trained() const { return Current()->all_trained; }

  CostModelSnapshot Snapshot() const;

  const CostModelOptions& options() const { return options_; }

 private:
  /// One backend's normal-equation accumulators (all decayable).
  struct Accumulator {
    double xtx[kCostFeatureDim][kCostFeatureDim] = {};
    double xty[kCostFeatureDim] = {};
    double yty = 0.0;
    double count = 0.0;
  };

  FittedBackendModel FitLocked(size_t index) const;
  void RefitLocked();

  const CostModelOptions options_;
  std::vector<std::string> names_;
  std::vector<uint32_t> ids_;

  mutable std::mutex mu_;
  std::vector<Accumulator> accum_;       // under mu_
  double last_nodes_ = 0.0;              // under mu_
  double last_edges_ = 0.0;              // under mu_
  uint64_t events_observed_ = 0;         // under mu_
  uint64_t refits_ = 0;                  // under mu_
  uint64_t decays_ = 0;                  // under mu_
  std::shared_ptr<const FittedCostModel> fitted_;  // swapped under mu_
};

struct LearnedRouterOptions {
  /// Candidate backends the model arbitrates between. The default trio
  /// spans the rule router's whole decision surface (its push, walk and
  /// default backends), so the learned policy can reproduce — or beat —
  /// any rule decision.
  std::vector<std::string> candidates = {"tea+", "hk-relax", "monte-carlo"};
  CostModelOptions model;
  /// Fraction of routing decisions that pick a uniformly random
  /// candidate instead of the argmin (deterministic counter-hash, not
  /// wall-clock randomness). Applies whether or not the model is
  /// trained: exploration is what feeds the non-winning backends'
  /// accumulators. 0 disables (deterministic tests).
  double explore_epsilon = 0.05;
  /// Mixed into the exploration hash so two routers sharing a workload
  /// don't explore in lockstep.
  uint64_t explore_seed = 0;
  /// The undertrained fallback policy's thresholds.
  RuleBasedRouterOptions fallback;
};

/// One backend's prediction row (server introspection).
struct BackendPrediction {
  std::string backend;
  uint32_t backend_id = 0;
  bool trained = false;
  double observations = 0.0;
  double cost_us = 0.0;
  double p95_us = 0.0;
};

/// The learned routing policy. Thread-safe; Observe() is the trainer's
/// entry point, everything else is const.
class LearnedRouter : public RoutingPolicy {
 public:
  explicit LearnedRouter(const LearnedRouterOptions& options = {});

  std::string_view Route(const RoutingQuery& query) const override;
  std::string_view name() const override { return "learned"; }

  /// Trained + this query's predicted costs say some other candidate is
  /// the runner-up: hedge advice for the serving layer. Nullopt while
  /// undertrained, when `primary_backend_id` is not a candidate, or with
  /// fewer than two candidates — hedging is simply inert then.
  std::optional<HedgeAdvice> Advise(const RoutingQuery& query,
                                    uint32_t primary_backend_id) const override;

  /// Feeds drained routing events to the cost model.
  void Observe(std::span<const RoutingEvent> events) { model_.Observe(events); }

  bool trained() const { return model_.trained(); }
  CostModelSnapshot ModelSnapshot() const { return model_.Snapshot(); }

  /// Per-candidate predictions for one query (server introspection; rows
  /// for untrained backends carry zero cost).
  std::vector<BackendPrediction> Predict(const RoutingQuery& query) const;

  const LearnedRouterOptions& options() const { return options_; }

 private:
  const LearnedRouterOptions options_;
  RuleBasedRouter fallback_;
  CostModel model_;
  /// Exploration counter: decision i explores iff hash(i, seed) < eps.
  mutable std::atomic<uint64_t> decisions_{0};
};

}  // namespace hkpr

#endif  // HKPR_HKPR_COST_MODEL_H_
