// Pluggable estimator backends.
//
// A "backend" is a WorkspaceEstimator (hkpr/estimator.h) registered under a
// stable string name. The EstimatorRegistry maps names to factories plus
// metadata, so every serving layer — QueryExecutor, BatchQueryEngine,
// AsyncQueryService, the benches and the line-protocol server — can select
// any estimator in the codebase by name instead of hard-coding one.
//
// Each backend also carries a *stable 32-bit id* derived from its name
// (FNV-1a, collision-checked at registration). Result caches persist this id
// in their keys, so estimates computed by distinct backends can never
// satisfy each other's lookups, regardless of registration order or which
// frontend produced them.
//
// Built-in backends (see backend.cc): "tea+", "tea", "monte-carlo", "push",
// "hk-relax", "cluster-hkpr", "tea+-par", "monte-carlo-par". Register()
// accepts additional ones at runtime.

#ifndef HKPR_HKPR_BACKEND_H_
#define HKPR_HKPR_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "hkpr/estimator.h"
#include "hkpr/params.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"

namespace hkpr {

class ThreadPool;

/// Tuning knobs a backend factory may read beyond the shared ApproxParams.
/// One context can be reused across backends; each factory reads only the
/// fields it understands and ignores the rest.
struct BackendContext {
  /// TEA+ tuning (backends "tea+" and "tea+-par").
  TeaPlusOptions tea_plus;
  /// TEA tuning (backend "tea").
  TeaOptions tea;
  /// Walk-phase kernel for every randomized walk backend (tea+, tea,
  /// monte-carlo and their parallel variants); the factories copy this over
  /// the per-algorithm options' walk_kernel field so one frontend flag
  /// steers all of them.
  WalkKernelOptions walk_kernel;
  /// HK-Relax absolute error eps_a; <= 0 derives eps_r * delta from the
  /// ApproxParams, the absolute target TEA+'s early-exit test certifies, so
  /// the deterministic baseline answers to comparable accuracy.
  double hk_relax_eps_a = 0.0;
  /// Precomputed Equation-(6) p'_f; < 0 means "compute from the graph" (an
  /// O(n) scan). Serving frontends fill this once per (graph, params) — see
  /// ResolvedSpec() — and share it across their per-worker estimators.
  double pf_prime = -1.0;
  /// Walk-phase shards of the parallel backends; 0 = hardware threads.
  uint32_t parallel_threads = 0;
  /// Optional pool for the parallel backends' walk shards; must outlive the
  /// estimator. Null spawns threads per call. A ThreadPool accepts external
  /// submissions from one thread at a time, so a pool here is for
  /// single-executor use only — multi-worker frontends (BatchQueryEngine,
  /// AsyncQueryService), whose executors compute concurrently, check-fail
  /// on a non-null pool rather than race on it.
  ThreadPool* pool = nullptr;
};

/// A serving backend choice: a registry name plus the tuning context its
/// factory reads. The default spec serves TEA+ with default tuning.
struct BackendSpec {
  std::string name = "tea+";
  BackendContext context;
};

/// Everything the registry knows about one backend.
struct BackendInfo {
  /// Canonical registry key ("tea+", "hk-relax", ...).
  std::string name;
  /// StableBackendId(name); filled in by Register().
  uint32_t stable_id = 0;
  /// The algorithm behind the backend, for reports and docs.
  std::string algorithm;
  /// True when the backend consumes RNG. Randomized backends honor
  /// Reseed() and need p'_f (Equation 6) to size their walk counts.
  bool randomized = false;
  /// Constructs a fresh estimator over `graph` (which must outlive it).
  std::function<std::unique_ptr<WorkspaceEstimator>(
      const Graph& graph, const ApproxParams& params, uint64_t seed,
      const BackendContext& context)>
      factory;
};

/// The stable id a backend name maps to: 32-bit FNV-1a of the name. A pure
/// function of the name, so ids survive process restarts and registration
/// reordering — safe to persist in cache keys.
uint32_t StableBackendId(std::string_view name);

/// String-keyed backend registry. All methods are thread-safe; registered
/// entries are never removed, so BackendInfo pointers stay valid for the
/// registry's lifetime.
class EstimatorRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in backends.
  static EstimatorRegistry& Global();

  /// Registers a backend under `info.name` (factory must be non-null).
  /// Check-fails on duplicate names or stable-id collisions; fills in
  /// `info.stable_id`.
  void Register(BackendInfo info);

  /// The entry for `name`, or nullptr when unknown.
  const BackendInfo* Find(std::string_view name) const;

  bool Contains(std::string_view name) const { return Find(name) != nullptr; }

  /// Registered names, sorted lexicographically.
  std::vector<std::string> Names() const;

  /// Names() joined with `separator` — the "available backends" string
  /// frontends print in error and help messages.
  std::string JoinedNames(std::string_view separator = ",") const;

  /// Constructs the named backend. Check-fails on unknown names — callers
  /// that need a graceful path (e.g. protocol servers) Find() first.
  std::unique_ptr<WorkspaceEstimator> Create(
      std::string_view name, const Graph& graph, const ApproxParams& params,
      uint64_t seed, const BackendContext& context = {}) const;

 private:
  EstimatorRegistry() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<BackendInfo>> entries_;
};

/// Returns `spec` with every shareable precomputation filled in: when the
/// spec'd backend is randomized and `context.pf_prime` is unset, p'_f is
/// computed once (an O(n) scan). Serving frontends that build one estimator
/// per worker resolve the spec once and construct all executors from the
/// result. Check-fails on unknown backend names.
BackendSpec ResolvedSpec(const BackendSpec& spec, const Graph& graph,
                         const ApproxParams& params);

/// Check-fails when `spec.context.pool` is set and `worker_count > 1`: a
/// ThreadPool accepts external submissions from one thread at a time, so
/// concurrently-computing executors cannot share one. Frontends that build
/// one executor per worker call this before constructing them.
void CheckPoolUnsharedAcrossWorkers(const BackendSpec& spec,
                                    uint32_t worker_count);

}  // namespace hkpr

#endif  // HKPR_HKPR_BACKEND_H_
