// k-RandomWalk (Algorithm 2): the non-Markovian heat-kernel random walk.

#ifndef HKPR_HKPR_RANDOM_WALK_H_
#define HKPR_HKPR_RANDOM_WALK_H_

#include <cstdint>

#include "common/random.h"
#include "graph/graph.h"
#include "hkpr/heat_kernel.h"

namespace hkpr {

/// Simulates a heat-kernel walk conditioned on its hop-k position being `u`:
/// at relative step l the walk stops with probability eta(k+l)/psi(k+l),
/// otherwise moves to a uniform neighbor. Returns the end node, which by
/// Lemma 2 is distributed as h_u^(k). Walks from isolated positions
/// (degree 0) stop in place. If `steps` is non-null the number of traversed
/// edges is added to it.
NodeId KRandomWalk(const Graph& graph, const HeatKernel& kernel, NodeId u,
                   uint32_t k, Rng& rng, uint64_t* steps = nullptr);

}  // namespace hkpr

#endif  // HKPR_HKPR_RANDOM_WALK_H_
