#include "hkpr/walk_kernel.h"

#include <algorithm>
#include <span>

#include "common/logging.h"

namespace hkpr {

std::string_view WalkKernelTypeName(WalkKernelType type) {
  switch (type) {
    case WalkKernelType::kScalar:
      return "scalar";
    case WalkKernelType::kInterleaved:
      return "interleaved";
  }
  return "unknown";
}

bool ParseWalkKernelType(std::string_view text, WalkKernelType* out) {
  if (text == "scalar") {
    *out = WalkKernelType::kScalar;
    return true;
  }
  if (text == "interleaved") {
    *out = WalkKernelType::kInterleaved;
    return true;
  }
  return false;
}

namespace {

// Each in-flight walk sits in one of four phases; a visit performs the reads
// whose cache lines the previous visit prefetched, then issues the prefetch
// for the next phase. One phase per visit keeps the issue-to-use distance at
// ~W slots of work.
enum class Phase : uint8_t {
  kResolveStart,  // alias columns prefetched -> resolve the indirection
  kLoadStart,     // starts entry prefetched  -> load (node, hop)
  kAdvance,       // offsets row prefetched   -> retire or pick the next arc
  kResolveHop,    // adjacency word prefetched-> complete the move
};

struct Slot {
  CounterRng rng;
  uint64_t local;  // walk index relative to first_walk
  AliasSampler::PendingSample pending;
  uint32_t sample;  // resolved alias index
  NodeId node;
  uint32_t hop;
  uint64_t pos;  // absolute adjacency position of the in-flight move
  uint32_t steps;
  Phase phase;
};

}  // namespace

uint64_t RunInterleavedWalks(const Graph& graph, const HeatKernel& kernel,
                             const WalkStartSet& starts, uint64_t stream_seed,
                             uint64_t first_walk, uint64_t num_walks,
                             NodeId* ends, uint32_t width,
                             uint32_t* per_walk_steps) {
  if (num_walks == 0) return 0;
  HKPR_DCHECK(ends != nullptr);
  HKPR_DCHECK(starts.alias == nullptr || starts.entries != nullptr);

  const uint32_t max_hop = kernel.MaxHop();
  const std::span<const double> term = kernel.TerminationProbs();
  const NodeId* adjacency = graph.adjacency().data();

  width = std::clamp<uint32_t>(width, 1, kMaxWalkKernelWidth);

  // Width 1 has no loads to overlap; the phase machine would only add
  // dispatch overhead, so run the same streams through a straight loop.
  // Draw-for-draw identical to the interleaved path below.
  if (width == 1) {
    CounterRng rng;
    uint64_t total_steps = 0;
    for (uint64_t w = 0; w < num_walks; ++w) {
      rng.ResetStream(stream_seed, first_walk + w);
      NodeId node;
      uint32_t hop;
      if (starts.alias != nullptr) {
        const uint32_t sample = starts.alias->Sample(rng);
        node = starts.entries[sample].first;
        hop = starts.entries[sample].second;
      } else {
        node = starts.fixed_node;
        hop = 0;
      }
      uint32_t steps = 0;
      if (hop < max_hop && graph.Degree(node) != 0) {
        while (hop < max_hop) {
          if (rng.UniformDouble() <= term[hop]) break;
          node = graph.RandomNeighbor(node, rng);
          ++hop;
          ++steps;
          if (graph.Degree(node) == 0) break;
        }
      }
      ends[w] = node;
      total_steps += steps;
      if (per_walk_steps != nullptr) per_walk_steps[w] = steps;
    }
    return total_steps;
  }

  Slot slots[kMaxWalkKernelWidth];

  // Points a slot at walk `local` and issues that walk's first prefetch:
  // draws happen here (alias column + acceptance) or in kAdvance, always in
  // the walk's canonical order on the walk's own stream.
  const auto refill = [&](Slot& s, uint64_t local) {
    s.rng.ResetStream(stream_seed, first_walk + local);
    s.local = local;
    s.steps = 0;
    if (starts.alias != nullptr) {
      s.pending = starts.alias->PrepareSample(s.rng);
      s.phase = Phase::kResolveStart;
    } else {
      s.node = starts.fixed_node;
      s.hop = 0;
      graph.PrefetchNode(s.node);
      s.phase = Phase::kAdvance;
    }
  };

  uint64_t next = 0;
  uint32_t active = 0;
  while (active < width && next < num_walks) refill(slots[active++], next++);

  uint64_t total_steps = 0;
  uint32_t i = 0;
  while (active > 0) {
    if (i >= active) i = 0;
    Slot& s = slots[i];
    bool retired = false;
    switch (s.phase) {
      case Phase::kResolveStart: {
        s.sample = starts.alias->ResolveSample(s.pending);
#if defined(__GNUC__)
        __builtin_prefetch(&starts.entries[s.sample], 0, 1);
#endif
        s.phase = Phase::kLoadStart;
        break;
      }
      case Phase::kLoadStart: {
        s.node = starts.entries[s.sample].first;
        s.hop = starts.entries[s.sample].second;
        graph.PrefetchNode(s.node);
        s.phase = Phase::kAdvance;
        break;
      }
      case Phase::kAdvance: {
        const uint32_t d = graph.Degree(s.node);
        if (s.hop >= max_hop || d == 0 ||
            s.rng.UniformDouble() <= term[s.hop]) {
          retired = true;
          break;
        }
        const uint64_t idx = s.rng.UniformInt(d);
        s.pos = graph.RowStart(s.node) + idx;
#if defined(__GNUC__)
        __builtin_prefetch(&adjacency[s.pos], 0, 1);
#endif
        s.phase = Phase::kResolveHop;
        break;
      }
      case Phase::kResolveHop: {
        s.node = adjacency[s.pos];
        ++s.hop;
        ++s.steps;
        graph.PrefetchNode(s.node);
        s.phase = Phase::kAdvance;
        break;
      }
    }
    if (retired) {
      ends[s.local] = s.node;
      total_steps += s.steps;
      if (per_walk_steps != nullptr) per_walk_steps[s.local] = s.steps;
      if (next < num_walks) {
        refill(s, next++);
        ++i;
      } else {
        slots[i] = slots[--active];  // swap-remove; revisit index i next
      }
    } else {
      ++i;
    }
  }
  return total_steps;
}

}  // namespace hkpr
