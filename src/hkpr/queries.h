// Higher-level HKPR query helpers built on the estimator interface:
// top-k proximity queries, seed-set (multi-seed) estimation, and the
// pool-backed batch query engine a serving frontend would call.

#ifndef HKPR_HKPR_QUERIES_H_
#define HKPR_HKPR_QUERIES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/sparse_vector.h"
#include "graph/graph.h"
#include "hkpr/estimator.h"
#include "hkpr/tea_plus.h"
#include "hkpr/workspace.h"
#include "parallel/thread_pool.h"

namespace hkpr {

/// A node with its normalized HKPR score.
struct ScoredNode {
  NodeId node;
  double score;  ///< rho_hat[v] / d(v), including any degree offset
};

/// The k nodes with the largest normalized HKPR in `estimate`, descending
/// (ties broken by node id). Isolated nodes are skipped. O(nnz log k).
std::vector<ScoredNode> TopKNormalized(const Graph& graph,
                                       const SparseVector& estimate,
                                       size_t k);

/// Convenience: run `estimator` on `seed` and return the top-k ranking.
std::vector<ScoredNode> TopKQuery(const Graph& graph,
                                  HkprEstimator& estimator, NodeId seed,
                                  size_t k);

/// HKPR of a *seed distribution*: rho = sum_i weights[i] * rho_{seeds[i]}.
/// HKPR is linear in its seed vector (Equation 2), so the weighted average
/// of per-seed estimates is an estimate for the distribution with the same
/// per-seed guarantees. Weights must be non-negative; they are normalized
/// to sum to 1. Empty weights mean uniform.
SparseVector EstimateSeedSet(const Graph& graph, HkprEstimator& estimator,
                             std::span<const NodeId> seeds,
                             std::span<const double> weights = {});

/// The serving-side query engine: a persistent ThreadPool plus one TEA+
/// estimator and one QueryWorkspace per pool thread.
///
/// EstimateBatch() statically shards a batch of seed nodes across the pool;
/// each worker answers its shard of queries sequentially, reusing its
/// workspace, so steady-state batches cost no thread spawns and no per-query
/// scratch allocations (only the returned estimates are fresh memory).
///
/// Each query's RNG is re-seeded from (engine seed, batch offset, position
/// in batch), so results are deterministic AND independent of the pool size
/// — a batch answered on 1 thread is bit-identical to the same batch on 8.
class BatchQueryEngine {
 public:
  /// `num_threads == 0` uses all hardware threads. The graph must outlive
  /// the engine.
  BatchQueryEngine(const Graph& graph, const ApproxParams& params,
                   uint64_t seed, uint32_t num_threads = 0,
                   const TeaPlusOptions& options = TeaPlusOptions());

  /// Answers one TEA+ query per entry of `seeds`; out[i] is the estimate for
  /// seeds[i]. Every seed must be a valid node id.
  std::vector<SparseVector> EstimateBatch(std::span<const NodeId> seeds);

  /// Convenience: batch top-k — out[i] is TopKNormalized of seeds[i]'s
  /// estimate.
  std::vector<std::vector<ScoredNode>> TopKBatch(std::span<const NodeId> seeds,
                                                 size_t k);

  uint32_t num_threads() const { return pool_.num_threads(); }
  ThreadPool& pool() { return pool_; }

  /// Queries answered since construction (advances the per-query RNG
  /// derivation, so repeated identical batches draw fresh randomness).
  uint64_t queries_served() const { return queries_served_; }

 private:
  const Graph& graph_;
  ThreadPool pool_;
  std::vector<TeaPlusEstimator> estimators_;  // one per pool thread
  std::vector<QueryWorkspace> workspaces_;    // one per pool thread
  uint64_t base_seed_;
  uint64_t queries_served_ = 0;
};

}  // namespace hkpr

#endif  // HKPR_HKPR_QUERIES_H_
