// Higher-level HKPR query helpers built on the estimator interface:
// top-k proximity queries and seed-set (multi-seed) estimation.

#ifndef HKPR_HKPR_QUERIES_H_
#define HKPR_HKPR_QUERIES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/sparse_vector.h"
#include "graph/graph.h"
#include "hkpr/estimator.h"

namespace hkpr {

/// A node with its normalized HKPR score.
struct ScoredNode {
  NodeId node;
  double score;  ///< rho_hat[v] / d(v), including any degree offset
};

/// The k nodes with the largest normalized HKPR in `estimate`, descending
/// (ties broken by node id). Isolated nodes are skipped. O(nnz log k).
std::vector<ScoredNode> TopKNormalized(const Graph& graph,
                                       const SparseVector& estimate,
                                       size_t k);

/// Convenience: run `estimator` on `seed` and return the top-k ranking.
std::vector<ScoredNode> TopKQuery(const Graph& graph,
                                  HkprEstimator& estimator, NodeId seed,
                                  size_t k);

/// HKPR of a *seed distribution*: rho = sum_i weights[i] * rho_{seeds[i]}.
/// HKPR is linear in its seed vector (Equation 2), so the weighted average
/// of per-seed estimates is an estimate for the distribution with the same
/// per-seed guarantees. Weights must be non-negative; they are normalized
/// to sum to 1. Empty weights mean uniform.
SparseVector EstimateSeedSet(const Graph& graph, HkprEstimator& estimator,
                             std::span<const NodeId> seeds,
                             std::span<const double> weights = {});

}  // namespace hkpr

#endif  // HKPR_HKPR_QUERIES_H_
