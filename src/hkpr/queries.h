// Higher-level HKPR query helpers built on the estimator interface:
// top-k proximity queries, seed-set (multi-seed) estimation, and the
// pool-backed batch query engine a serving frontend would call.

#ifndef HKPR_HKPR_QUERIES_H_
#define HKPR_HKPR_QUERIES_H_

#include <cstdint>
#include <span>
#include <vector>

#include <memory>

#include "common/sparse_vector.h"
#include "graph/graph.h"
#include "hkpr/backend.h"
#include "hkpr/estimator.h"
#include "hkpr/router.h"
#include "hkpr/workspace.h"
#include "parallel/thread_pool.h"

namespace hkpr {

/// A node with its normalized HKPR score.
struct ScoredNode {
  NodeId node;
  double score;  ///< rho_hat[v] / d(v), including any degree offset
};

/// The k nodes with the largest normalized HKPR in `estimate`, descending
/// (ties broken by node id). Isolated nodes are skipped. O(nnz log k).
std::vector<ScoredNode> TopKNormalized(const Graph& graph,
                                       const SparseVector& estimate,
                                       size_t k);

/// Convenience: run `estimator` on `seed` and return the top-k ranking.
std::vector<ScoredNode> TopKQuery(const Graph& graph,
                                  HkprEstimator& estimator, NodeId seed,
                                  size_t k);

/// HKPR of a *seed distribution*: rho = sum_i weights[i] * rho_{seeds[i]}.
/// HKPR is linear in its seed vector (Equation 2), so the weighted average
/// of per-seed estimates is an estimate for the distribution with the same
/// per-seed guarantees. Weights must be non-negative; they are normalized
/// to sum to 1. Empty weights mean uniform.
SparseVector EstimateSeedSet(const Graph& graph, HkprEstimator& estimator,
                             std::span<const NodeId> seeds,
                             std::span<const double> weights = {});

/// Mixes an engine seed with a query's global index into an independent RNG
/// stream (SplitMix64-style finalizer). Shared by every serving frontend
/// (BatchQueryEngine, AsyncQueryService) so that the randomness a query
/// draws is a function of (engine seed, query index) alone — two frontends
/// answering "query #i" with the same engine seed produce bit-identical
/// estimates.
uint64_t QueryRngSeed(uint64_t base_seed, uint64_t query_index);

/// One serving thread's worth of query state: registry-built backend
/// estimators plus one reusable QueryWorkspace. Answer() re-seeds the
/// estimator from (base_seed, query_index) and runs the query inside the
/// workspace, so steady-state answers are allocation-free apart from the
/// returned copy. For deterministic backends the re-seed is a no-op and
/// answers are exactly the direct estimator's.
///
/// The executor is *plan-aware*: it is constructed with a default
/// BackendSpec (built eagerly, as before) and lazily builds one estimator
/// per distinct QueryPlan it is asked to execute — a routed/overridden
/// query pays the estimator construction once per (worker, plan) and is
/// allocation-free afterwards. All plans share the one workspace, which is
/// fully reset per query, so answers depend only on
/// (plan, engine seed, query index): executing a plan here is bit-identical
/// to a dedicated executor constructed directly on that plan's backend and
/// params with the same engine seed.
///
/// Factored out of BatchQueryEngine so other frontends (the async query
/// service in src/service/) run the exact same computation per query and
/// stay bit-identical to the batch path — per backend.
class QueryExecutor {
 public:
  /// Builds `spec`'s backend over `graph` via the global EstimatorRegistry
  /// (check-fails on unknown names; Find() first for a graceful path). When
  /// constructing many executors over one graph, resolve the spec once with
  /// ResolvedSpec() so shared precomputations (p'_f) are not re-scanned.
  QueryExecutor(const Graph& graph, const ApproxParams& params,
                uint64_t base_seed, const BackendSpec& spec = {});

  /// Answers query number `query_index` on the default plan inside the
  /// reusable workspace. The returned reference is valid until the next
  /// Answer* call.
  const SparseVector& AnswerInto(NodeId seed, uint64_t query_index);

  /// Answers on an explicit plan (routed or overridden query). The plan's
  /// backend must be registered; its estimator is built on first use and
  /// reused afterwards.
  const SparseVector& AnswerInto(NodeId seed, uint64_t query_index,
                                 const QueryPlan& plan);

  /// AnswerInto() + CompactCopy(), for results that outlive the workspace.
  SparseVector Answer(NodeId seed, uint64_t query_index);
  SparseVector Answer(NodeId seed, uint64_t query_index,
                      const QueryPlan& plan);

  /// AnswerInto() + TopKNormalized().
  std::vector<ScoredNode> AnswerTopK(NodeId seed, uint64_t query_index,
                                     size_t k);
  std::vector<ScoredNode> AnswerTopK(NodeId seed, uint64_t query_index,
                                     size_t k, const QueryPlan& plan);

  /// The fully resolved default plan (spec backend + construction params).
  const QueryPlan& default_plan() const { return default_plan_; }

  /// The default backend's algorithm name ("TEA+", "HK-Relax", ...).
  std::string_view backend_name() const {
    return estimators_.front().estimator->name();
  }

  /// The registry's stable id for the default backend (cache-key material).
  uint32_t backend_id() const { return default_plan_.backend_id; }

  /// Distinct plans this executor currently holds estimators for (>= 1;
  /// the default plan is built at construction). Observability for tests
  /// and stats: a backend switch shows up as +1 here, never as a rebuild.
  size_t num_plan_estimators() const { return estimators_.size(); }

  /// Retained plan estimators per executor. The default plan is pinned;
  /// the least-recently-used non-default plan is evicted beyond this, so a
  /// client spraying distinct parameter overrides cannot grow worker
  /// memory without bound. Eviction never affects results: estimator
  /// construction is deterministic and every query re-seeds from (engine
  /// seed, query index), so a rebuilt plan answers bit-identically.
  static constexpr size_t kMaxPlanEstimators = 16;

 private:
  /// Identity of a plan for estimator reuse: backend plus the bit patterns
  /// of every parameter an estimator bakes in at construction (bitwise so
  /// the match is exact, cf. ResultCacheKey).
  struct PlanKey {
    uint32_t backend_id = 0;
    uint64_t t_bits = 0;
    uint64_t eps_r_bits = 0;
    uint64_t delta_bits = 0;
    uint64_t p_f_bits = 0;
    bool operator==(const PlanKey&) const = default;
  };
  static PlanKey KeyOf(uint32_t backend_id, const ApproxParams& params);

  struct PlanEstimator {
    PlanKey key;
    std::unique_ptr<WorkspaceEstimator> estimator;
  };

  /// The estimator for `plan`, built on first use (check-fails when the
  /// plan names an unregistered backend — resolution upstream guarantees
  /// it never does).
  WorkspaceEstimator& EstimatorFor(const QueryPlan& plan);

  /// p'_f (Equation 6) for `p_f`, memoized: the spec's resolved value when
  /// provided, computed once (an O(n) scan) otherwise — shared by every
  /// randomized backend this executor lazily builds.
  double PfPrimeFor(double p_f);

  const SparseVector& Run(WorkspaceEstimator& estimator, NodeId seed,
                          uint64_t query_index);

  const Graph& graph_;
  uint64_t base_seed_;
  /// Shared tuning for lazily built backends (the default spec's context).
  BackendContext context_;
  double memo_pf_ = 0.0;        // p_f the memoized p'_f belongs to
  double memo_pf_prime_ = -1.0; // < 0 = not yet computed
  QueryPlan default_plan_;
  std::vector<PlanEstimator> estimators_;  // [0] = the default plan's
  QueryWorkspace workspace_;
};

/// The serving-side query engine: a persistent ThreadPool plus one
/// QueryExecutor (backend estimator + QueryWorkspace) per pool thread. The
/// backend is any name registered in the EstimatorRegistry; the default
/// spec serves TEA+.
///
/// EstimateBatch() statically shards a batch of seed nodes across the pool;
/// each worker answers its shard of queries sequentially, reusing its
/// workspace, so steady-state batches cost no thread spawns and no per-query
/// scratch allocations (only the returned estimates are fresh memory).
///
/// Each query's RNG is re-seeded from (engine seed, batch offset, position
/// in batch), so results are deterministic AND independent of the pool size
/// — a batch answered on 1 thread is bit-identical to the same batch on 8.
class BatchQueryEngine {
 public:
  /// `num_threads == 0` uses all hardware threads. The graph must outlive
  /// the engine. Check-fails on unknown backend names.
  BatchQueryEngine(const Graph& graph, const ApproxParams& params,
                   uint64_t seed, uint32_t num_threads = 0,
                   const BackendSpec& backend = {});

  /// Convenience: TEA+ with explicit tuning (the pre-registry signature).
  BatchQueryEngine(const Graph& graph, const ApproxParams& params,
                   uint64_t seed, uint32_t num_threads,
                   const TeaPlusOptions& options);

  /// Answers one backend query per entry of `seeds`; out[i] is the estimate
  /// for seeds[i]. Every seed must be a valid node id. An empty span returns
  /// an empty result without touching the pool.
  std::vector<SparseVector> EstimateBatch(std::span<const NodeId> seeds);

  /// Answers the whole batch on an explicit plan instead of the engine's
  /// default (each per-thread executor builds the plan's estimator on
  /// first use). Per-query RNG derivation is identical to the default
  /// overload, so a plan naming the engine's own backend and params is
  /// bit-identical to it.
  std::vector<SparseVector> EstimateBatch(std::span<const NodeId> seeds,
                                          const QueryPlan& plan);

  /// Convenience: batch top-k — out[i] is TopKNormalized of seeds[i]'s
  /// estimate. An empty span returns an empty result without touching the
  /// pool.
  std::vector<std::vector<ScoredNode>> TopKBatch(std::span<const NodeId> seeds,
                                                 size_t k);
  std::vector<std::vector<ScoredNode>> TopKBatch(std::span<const NodeId> seeds,
                                                 size_t k,
                                                 const QueryPlan& plan);

  /// The engine's resolved default plan (backend + construction params).
  const QueryPlan& default_plan() const {
    return executors_.front().default_plan();
  }

  uint32_t num_threads() const { return pool_.num_threads(); }
  ThreadPool& pool() { return pool_; }

  /// The backend's algorithm name ("TEA+", "HK-Relax", ...).
  std::string_view backend_name() const {
    return executors_.front().backend_name();
  }

  /// Queries answered since construction (advances the per-query RNG
  /// derivation, so repeated identical batches draw fresh randomness).
  uint64_t queries_served() const { return queries_served_; }

 private:
  const Graph& graph_;
  ThreadPool pool_;
  std::vector<QueryExecutor> executors_;  // one per pool thread
  uint64_t queries_served_ = 0;
};

}  // namespace hkpr

#endif  // HKPR_HKPR_QUERIES_H_
