// Higher-level HKPR query helpers built on the estimator interface:
// top-k proximity queries, seed-set (multi-seed) estimation, and the
// pool-backed batch query engine a serving frontend would call.

#ifndef HKPR_HKPR_QUERIES_H_
#define HKPR_HKPR_QUERIES_H_

#include <cstdint>
#include <span>
#include <vector>

#include <memory>

#include "common/sparse_vector.h"
#include "graph/graph.h"
#include "hkpr/backend.h"
#include "hkpr/estimator.h"
#include "hkpr/workspace.h"
#include "parallel/thread_pool.h"

namespace hkpr {

/// A node with its normalized HKPR score.
struct ScoredNode {
  NodeId node;
  double score;  ///< rho_hat[v] / d(v), including any degree offset
};

/// The k nodes with the largest normalized HKPR in `estimate`, descending
/// (ties broken by node id). Isolated nodes are skipped. O(nnz log k).
std::vector<ScoredNode> TopKNormalized(const Graph& graph,
                                       const SparseVector& estimate,
                                       size_t k);

/// Convenience: run `estimator` on `seed` and return the top-k ranking.
std::vector<ScoredNode> TopKQuery(const Graph& graph,
                                  HkprEstimator& estimator, NodeId seed,
                                  size_t k);

/// HKPR of a *seed distribution*: rho = sum_i weights[i] * rho_{seeds[i]}.
/// HKPR is linear in its seed vector (Equation 2), so the weighted average
/// of per-seed estimates is an estimate for the distribution with the same
/// per-seed guarantees. Weights must be non-negative; they are normalized
/// to sum to 1. Empty weights mean uniform.
SparseVector EstimateSeedSet(const Graph& graph, HkprEstimator& estimator,
                             std::span<const NodeId> seeds,
                             std::span<const double> weights = {});

/// Mixes an engine seed with a query's global index into an independent RNG
/// stream (SplitMix64-style finalizer). Shared by every serving frontend
/// (BatchQueryEngine, AsyncQueryService) so that the randomness a query
/// draws is a function of (engine seed, query index) alone — two frontends
/// answering "query #i" with the same engine seed produce bit-identical
/// estimates.
uint64_t QueryRngSeed(uint64_t base_seed, uint64_t query_index);

/// One serving thread's worth of query state: a registry-built backend
/// estimator plus its reusable QueryWorkspace. Answer() re-seeds the
/// estimator from (base_seed, query_index) and runs the query inside the
/// workspace, so steady-state answers are allocation-free apart from the
/// returned copy. For deterministic backends the re-seed is a no-op and
/// answers are exactly the direct estimator's.
///
/// Factored out of BatchQueryEngine so other frontends (the async query
/// service in src/service/) run the exact same computation per query and
/// stay bit-identical to the batch path — per backend.
class QueryExecutor {
 public:
  /// Builds `spec`'s backend over `graph` via the global EstimatorRegistry
  /// (check-fails on unknown names; Find() first for a graceful path). When
  /// constructing many executors over one graph, resolve the spec once with
  /// ResolvedSpec() so shared precomputations (p'_f) are not re-scanned.
  QueryExecutor(const Graph& graph, const ApproxParams& params,
                uint64_t base_seed, const BackendSpec& spec = {});

  /// Answers query number `query_index` inside the reusable workspace. The
  /// returned reference is valid until the next Answer* call.
  const SparseVector& AnswerInto(NodeId seed, uint64_t query_index);

  /// AnswerInto() + CompactCopy(), for results that outlive the workspace.
  SparseVector Answer(NodeId seed, uint64_t query_index);

  /// AnswerInto() + TopKNormalized().
  std::vector<ScoredNode> AnswerTopK(NodeId seed, uint64_t query_index,
                                     size_t k);

  /// The backend's algorithm name ("TEA+", "HK-Relax", ...).
  std::string_view backend_name() const { return estimator_->name(); }

  /// The registry's stable id for the backend (cache-key material).
  uint32_t backend_id() const { return backend_id_; }

 private:
  const Graph& graph_;
  uint64_t base_seed_;
  std::unique_ptr<WorkspaceEstimator> estimator_;
  uint32_t backend_id_;
  QueryWorkspace workspace_;
};

/// The serving-side query engine: a persistent ThreadPool plus one
/// QueryExecutor (backend estimator + QueryWorkspace) per pool thread. The
/// backend is any name registered in the EstimatorRegistry; the default
/// spec serves TEA+.
///
/// EstimateBatch() statically shards a batch of seed nodes across the pool;
/// each worker answers its shard of queries sequentially, reusing its
/// workspace, so steady-state batches cost no thread spawns and no per-query
/// scratch allocations (only the returned estimates are fresh memory).
///
/// Each query's RNG is re-seeded from (engine seed, batch offset, position
/// in batch), so results are deterministic AND independent of the pool size
/// — a batch answered on 1 thread is bit-identical to the same batch on 8.
class BatchQueryEngine {
 public:
  /// `num_threads == 0` uses all hardware threads. The graph must outlive
  /// the engine. Check-fails on unknown backend names.
  BatchQueryEngine(const Graph& graph, const ApproxParams& params,
                   uint64_t seed, uint32_t num_threads = 0,
                   const BackendSpec& backend = {});

  /// Convenience: TEA+ with explicit tuning (the pre-registry signature).
  BatchQueryEngine(const Graph& graph, const ApproxParams& params,
                   uint64_t seed, uint32_t num_threads,
                   const TeaPlusOptions& options);

  /// Answers one backend query per entry of `seeds`; out[i] is the estimate
  /// for seeds[i]. Every seed must be a valid node id. An empty span returns
  /// an empty result without touching the pool.
  std::vector<SparseVector> EstimateBatch(std::span<const NodeId> seeds);

  /// Convenience: batch top-k — out[i] is TopKNormalized of seeds[i]'s
  /// estimate. An empty span returns an empty result without touching the
  /// pool.
  std::vector<std::vector<ScoredNode>> TopKBatch(std::span<const NodeId> seeds,
                                                 size_t k);

  uint32_t num_threads() const { return pool_.num_threads(); }
  ThreadPool& pool() { return pool_; }

  /// The backend's algorithm name ("TEA+", "HK-Relax", ...).
  std::string_view backend_name() const {
    return executors_.front().backend_name();
  }

  /// Queries answered since construction (advances the per-query RNG
  /// derivation, so repeated identical batches draw fresh randomness).
  uint64_t queries_served() const { return queries_served_; }

 private:
  const Graph& graph_;
  ThreadPool pool_;
  std::vector<QueryExecutor> executors_;  // one per pool thread
  uint64_t queries_served_ = 0;
};

}  // namespace hkpr

#endif  // HKPR_HKPR_QUERIES_H_
