#include "hkpr/cost_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "hkpr/backend.h"

namespace hkpr {

namespace {

/// Clamp for the log-space prediction before exponentiating: e^30 us is
/// ~3e13 us (~1 year), far beyond any real compute — keeps a degenerate
/// fit from overflowing to inf and poisoning comparisons.
constexpr double kMaxLogUs = 30.0;

double ExpUs(double log_us) {
  return std::expm1(std::clamp(log_us, 0.0, kMaxLogUs));
}

/// The exploration hash: one SplitMix64 step (common/random.h).
/// Deterministic in the decision counter, so tests (and replays) see the
/// same explore schedule.
uint64_t ExploreHash(uint64_t x) { return Mix64(x + 0x9e3779b97f4a7c15ULL); }

/// Solves (A + lambda I) w = b for a symmetric positive semi-definite
/// A via Gaussian elimination with partial pivoting. A and b are
/// destroyed. Dimensions are tiny (kCostFeatureDim = 5), so this is a
/// few hundred flops per refit.
void SolveRidge(double a[kCostFeatureDim][kCostFeatureDim],
                double b[kCostFeatureDim], double lambda,
                CostFeatures& out) {
  constexpr size_t n = kCostFeatureDim;
  for (size_t i = 0; i < n; ++i) a[i][i] += lambda;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(a[col][j], a[pivot][j]);
      std::swap(b[col], b[pivot]);
    }
    // The ridge term guarantees a non-zero pivot for any PSD A; guard
    // anyway so a NaN-poisoned accumulator cannot divide by zero.
    const double p = a[col][col];
    if (!(std::abs(p) > 0.0)) {
      out.fill(0.0);
      return;
    }
    for (size_t row = col + 1; row < n; ++row) {
      const double f = a[row][col] / p;
      if (f == 0.0) continue;
      for (size_t j = col; j < n; ++j) a[row][j] -= f * a[col][j];
      b[row] -= f * b[col];
    }
  }
  for (size_t col = n; col-- > 0;) {
    double sum = b[col];
    for (size_t j = col + 1; j < n; ++j) sum -= a[col][j] * out[j];
    out[col] = sum / a[col][col];
  }
}

}  // namespace

CostFeatures CostFeaturesOf(uint32_t seed_degree, uint64_t num_edges,
                            const ApproxParams& params) {
  return {1.0, std::log1p(static_cast<double>(seed_degree)), params.t,
          std::log1p(static_cast<double>(num_edges)), std::log(params.eps_r)};
}

CostFeatures CostFeaturesOf(const RoutingQuery& query) {
  return CostFeaturesOf(query.seed_degree, query.num_edges, query.params);
}

CostFeatures CostFeaturesOf(const RoutingEvent& event) {
  return CostFeaturesOf(event.seed_degree, event.num_edges, event.params);
}

double FittedBackendModel::PredictUs(const CostFeatures& x) const {
  double log_us = 0.0;
  for (size_t i = 0; i < kCostFeatureDim; ++i) log_us += coef[i] * x[i];
  return ExpUs(log_us);
}

double FittedBackendModel::PredictP95Us(const CostFeatures& x,
                                        double z) const {
  double log_us = 0.0;
  for (size_t i = 0; i < kCostFeatureDim; ++i) log_us += coef[i] * x[i];
  return ExpUs(log_us + z * sigma);
}

const FittedBackendModel* FittedCostModel::Find(uint32_t backend_id) const {
  for (const FittedBackendModel& model : backends) {
    if (model.backend_id == backend_id) return &model;
  }
  return nullptr;
}

CostModel::CostModel(std::vector<std::string> backends,
                     const CostModelOptions& options)
    : options_(options), names_(std::move(backends)) {
  HKPR_CHECK(!names_.empty()) << "cost model needs candidate backends";
  ids_.reserve(names_.size());
  for (const std::string& name : names_) {
    const BackendInfo* info = EstimatorRegistry::Global().Find(name);
    HKPR_CHECK(info != nullptr)
        << "cost-model candidate \"" << name << "\" is not registered "
        << "(available: " << EstimatorRegistry::Global().JoinedNames() << ")";
    ids_.push_back(info->stable_id);
  }
  accum_.resize(names_.size());
  std::lock_guard<std::mutex> lock(mu_);
  RefitLocked();
}

FittedBackendModel CostModel::FitLocked(size_t index) const {
  const Accumulator& acc = accum_[index];
  FittedBackendModel model;
  model.backend = names_[index];
  model.backend_id = ids_[index];
  model.observations = acc.count;
  model.trained = acc.count >= options_.min_observations;
  if (acc.count <= 0.0) return model;
  // Normalize by the sample count before solving: conditioning stays
  // count-independent and ridge_lambda means the same thing at 50 and
  // 50k observations.
  double a[kCostFeatureDim][kCostFeatureDim];
  double b[kCostFeatureDim];
  for (size_t i = 0; i < kCostFeatureDim; ++i) {
    for (size_t j = 0; j < kCostFeatureDim; ++j) {
      a[i][j] = acc.xtx[i][j] / acc.count;
    }
    b[i] = acc.xty[i] / acc.count;
  }
  SolveRidge(a, b, options_.ridge_lambda, model.coef);
  // Residual variance from the normal-equation identity
  // RSS = yty - 2 w.Xty + w.XtX.w, all already accumulated.
  double wxty = 0.0;
  double wxtxw = 0.0;
  for (size_t i = 0; i < kCostFeatureDim; ++i) {
    wxty += model.coef[i] * acc.xty[i];
    double row = 0.0;
    for (size_t j = 0; j < kCostFeatureDim; ++j) {
      row += acc.xtx[i][j] * model.coef[j];
    }
    wxtxw += model.coef[i] * row;
  }
  const double rss = std::max(0.0, acc.yty - 2.0 * wxty + wxtxw);
  const double dof = std::max(1.0, acc.count - kCostFeatureDim);
  model.sigma = std::sqrt(rss / dof);
  return model;
}

void CostModel::RefitLocked() {
  auto fitted = std::make_shared<FittedCostModel>();
  fitted->backends.reserve(names_.size());
  bool all_trained = true;
  for (size_t i = 0; i < names_.size(); ++i) {
    fitted->backends.push_back(FitLocked(i));
    all_trained = all_trained && fitted->backends.back().trained;
  }
  fitted->all_trained = all_trained;
  fitted->ref_nodes = last_nodes_;
  fitted->ref_edges = last_edges_;
  fitted_ = std::move(fitted);
}

void CostModel::Observe(std::span<const RoutingEvent> events) {
  if (events.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  bool touched = false;
  for (const RoutingEvent& event : events) {
    // Only events that actually invoked an estimator carry a compute
    // duration; hits and coalesced waits are cache behavior, not cost.
    const CacheOutcome outcome = event.cache_outcome();
    if (outcome != CacheOutcome::kMiss && outcome != CacheOutcome::kNone) {
      continue;
    }
    size_t index = names_.size();
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (ids_[i] == event.backend_id) {
        index = i;
        break;
      }
    }
    if (index == names_.size()) continue;  // not a candidate
    const double nodes = static_cast<double>(event.num_nodes);
    const double edges = static_cast<double>(event.num_edges);
    if (last_edges_ > 0.0) {
      // A hot-swap to a differently-shaped graph: decay everything so
      // the stale fit loses both its weight and its "trained" status,
      // and the router falls back to the rules while re-fitting here.
      const double node_ratio =
          std::max(nodes, last_nodes_) / std::max(1.0, std::min(nodes, last_nodes_));
      const double edge_ratio =
          std::max(edges, last_edges_) / std::max(1.0, std::min(edges, last_edges_));
      if (std::max(node_ratio, edge_ratio) > options_.scale_change_factor) {
        for (Accumulator& acc : accum_) {
          for (size_t i = 0; i < kCostFeatureDim; ++i) {
            for (size_t j = 0; j < kCostFeatureDim; ++j) {
              acc.xtx[i][j] *= options_.scale_decay;
            }
            acc.xty[i] *= options_.scale_decay;
          }
          acc.yty *= options_.scale_decay;
          acc.count *= options_.scale_decay;
        }
        ++decays_;
      }
    }
    last_nodes_ = nodes;
    last_edges_ = edges;

    const CostFeatures x = CostFeaturesOf(event);
    const uint64_t compute_us =
        event.compute_end_us - event.compute_begin_us;
    const double y = std::log1p(static_cast<double>(compute_us));
    Accumulator& acc = accum_[index];
    for (size_t i = 0; i < kCostFeatureDim; ++i) {
      for (size_t j = 0; j < kCostFeatureDim; ++j) {
        acc.xtx[i][j] += x[i] * x[j];
      }
      acc.xty[i] += x[i] * y;
    }
    acc.yty += y * y;
    acc.count += 1.0;
    ++events_observed_;
    touched = true;
  }
  if (touched) {
    RefitLocked();
    ++refits_;
  }
}

std::shared_ptr<const FittedCostModel> CostModel::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fitted_;
}

CostModelSnapshot CostModel::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  CostModelSnapshot snap;
  snap.fitted = fitted_;
  snap.events_observed = events_observed_;
  snap.refits = refits_;
  snap.decays = decays_;
  return snap;
}

LearnedRouter::LearnedRouter(const LearnedRouterOptions& options)
    : options_(options),
      fallback_(options.fallback),
      model_(options.candidates, options.model) {
  HKPR_CHECK(options_.explore_epsilon >= 0.0 &&
             options_.explore_epsilon < 1.0)
      << "explore_epsilon must be in [0, 1)";
}

std::string_view LearnedRouter::Route(const RoutingQuery& query) const {
  const std::vector<std::string>& candidates = options_.candidates;
  // Epsilon-greedy exploration first (trained or not): it is what keeps
  // feeding backends the argmin — or the rules — would starve.
  if (options_.explore_epsilon > 0.0) {
    const uint64_t tick = decisions_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t h = ExploreHash(tick ^ options_.explore_seed);
    if (static_cast<double>(h >> 11) * 0x1.0p-53 < options_.explore_epsilon) {
      return candidates[ExploreHash(h) % candidates.size()];
    }
  }
  const std::shared_ptr<const FittedCostModel> model = model_.Current();
  if (!model->all_trained) {
    // Cold start (or post-swap decay): behave exactly like the rule
    // policy until every candidate has enough samples to compare.
    return fallback_.Route(query);
  }
  const CostFeatures x = CostFeaturesOf(query);
  size_t best = 0;
  double best_us = model->backends[0].PredictUs(x);
  for (size_t i = 1; i < model->backends.size(); ++i) {
    const double us = model->backends[i].PredictUs(x);
    if (us < best_us) {
      best = i;
      best_us = us;
    }
  }
  return candidates[best];
}

std::optional<HedgeAdvice> LearnedRouter::Advise(
    const RoutingQuery& query, uint32_t primary_backend_id) const {
  const std::shared_ptr<const FittedCostModel> model = model_.Current();
  if (!model->all_trained || model->backends.size() < 2) return std::nullopt;
  const FittedBackendModel* primary = model->Find(primary_backend_id);
  if (primary == nullptr) return std::nullopt;  // pinned off-candidate plan
  const CostFeatures x = CostFeaturesOf(query);
  const FittedBackendModel* runner_up = nullptr;
  double runner_up_us = 0.0;
  for (const FittedBackendModel& backend : model->backends) {
    if (backend.backend_id == primary_backend_id) continue;
    const double us = backend.PredictUs(x);
    if (runner_up == nullptr || us < runner_up_us) {
      runner_up = &backend;
      runner_up_us = us;
    }
  }
  if (runner_up == nullptr) return std::nullopt;
  HedgeAdvice advice;
  advice.backend = runner_up->backend;
  advice.backend_id = runner_up->backend_id;
  advice.primary_p95_us = primary->PredictP95Us(x, model_.options().p95_z);
  return advice;
}

std::vector<BackendPrediction> LearnedRouter::Predict(
    const RoutingQuery& query) const {
  const std::shared_ptr<const FittedCostModel> model = model_.Current();
  const CostFeatures x = CostFeaturesOf(query);
  std::vector<BackendPrediction> rows;
  rows.reserve(model->backends.size());
  for (const FittedBackendModel& backend : model->backends) {
    BackendPrediction row;
    row.backend = backend.backend;
    row.backend_id = backend.backend_id;
    row.trained = backend.trained;
    row.observations = backend.observations;
    if (backend.observations > 0.0) {
      row.cost_us = backend.PredictUs(x);
      row.p95_us = backend.PredictP95Us(x, model_.options().p95_z);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace hkpr
