// Pure Monte-Carlo (d, eps_r, delta)-approximate HKPR (Section 3).

#ifndef HKPR_HKPR_MONTE_CARLO_H_
#define HKPR_HKPR_MONTE_CARLO_H_

#include <string_view>

#include "common/random.h"
#include "hkpr/estimator.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/params.h"

namespace hkpr {

/// Estimates rho_s by running omega = 2(1+eps_r/3) ln(1/p'_f) / (eps_r^2
/// delta) heat-kernel walks from the seed and recording end-point
/// frequencies. This is the baseline whose walk count TEA/TEA+ reduce.
class MonteCarloEstimator : public HkprEstimator {
 public:
  /// `graph` must outlive the estimator. p'_f is precomputed here (the paper
  /// notes it is computed at graph load time).
  MonteCarloEstimator(const Graph& graph, const ApproxParams& params,
                      uint64_t seed);

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  std::string_view name() const override { return "Monte-Carlo"; }

  /// Number of walks one Estimate() call performs.
  uint64_t NumWalks() const { return num_walks_; }

 private:
  const Graph& graph_;
  ApproxParams params_;
  HeatKernel kernel_;
  uint64_t num_walks_;
  Rng rng_;
};

}  // namespace hkpr

#endif  // HKPR_HKPR_MONTE_CARLO_H_
