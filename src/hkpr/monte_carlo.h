// Pure Monte-Carlo (d, eps_r, delta)-approximate HKPR (Section 3).

#ifndef HKPR_HKPR_MONTE_CARLO_H_
#define HKPR_HKPR_MONTE_CARLO_H_

#include <string_view>

#include "common/random.h"
#include "hkpr/estimator.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/params.h"
#include "hkpr/walk_kernel.h"
#include "hkpr/workspace.h"

namespace hkpr {

/// Estimates rho_s by running omega = 2(1+eps_r/3) ln(1/p'_f) / (eps_r^2
/// delta) heat-kernel walks from the seed and recording end-point
/// frequencies. This is the baseline whose walk count TEA/TEA+ reduce.
class MonteCarloEstimator : public HkprEstimator, public WorkspaceEstimator {
 public:
  /// `graph` must outlive the estimator. `pf_prime` is the precomputed
  /// Equation-(6) value for `params.p_f`; negative (the default) computes
  /// it here — pass it so callers building many estimators over one graph
  /// scan it once (cf. TeaPlusEstimator).
  MonteCarloEstimator(const Graph& graph, const ApproxParams& params,
                      uint64_t seed, double pf_prime = -1.0,
                      const WalkKernelOptions& walk_kernel =
                          WalkKernelOptions());

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  /// Runs the query entirely inside `ws` (end-point counts accumulate into
  /// `ws.result`) and returns a reference to `ws.result`, valid until the
  /// next query on that workspace. Allocation-free once the workspace
  /// capacities have warmed up.
  const SparseVector& EstimateInto(NodeId seed, QueryWorkspace& ws,
                                   EstimatorStats* stats = nullptr) override;

  /// Re-seeds the walk randomness (the scalar Rng and the interleaved
  /// kernel's stream derivation); queries after a Reseed(s) replay the same
  /// randomness as a freshly constructed estimator with seed `s`.
  void Reseed(uint64_t seed) override {
    rng_.Reseed(seed);
    seed_ = seed;
    epoch_ = 0;
  }

  std::string_view name() const override { return "Monte-Carlo"; }

  /// Number of walks one Estimate() call performs.
  uint64_t NumWalks() const { return num_walks_; }

 private:
  const Graph& graph_;
  ApproxParams params_;
  HeatKernel kernel_;
  WalkKernelOptions walk_kernel_;
  uint64_t num_walks_;
  Rng rng_;            // scalar walk path
  uint64_t seed_;      // stream-family seed for the interleaved kernel
  uint64_t epoch_ = 0;  // advances per query so repeated queries differ
};

}  // namespace hkpr

#endif  // HKPR_HKPR_MONTE_CARLO_H_
