// Parameters of (d, eps_r, delta)-approximate HKPR computation.

#ifndef HKPR_HKPR_PARAMS_H_
#define HKPR_HKPR_PARAMS_H_

#include <cstdint>

#include "graph/graph.h"

namespace hkpr {

/// User-facing accuracy parameters shared by Monte-Carlo, TEA and TEA+
/// (Definition 1 and Table 1 of the paper).
struct ApproxParams {
  /// Heat constant t of the kernel (paper default 5).
  double t = 5.0;
  /// Relative error threshold eps_r (paper default 0.5).
  double eps_r = 0.5;
  /// Normalized-HKPR significance threshold delta; values of rho/d above
  /// delta get the relative guarantee. Typical choice: O(1/n).
  double delta = 1e-6;
  /// Failure probability p_f (paper default 1e-6).
  double p_f = 1e-6;
};

/// Computes p'_f per Equation (6):
///   p'_f = p_f                                  if sum_v p_f^(d(v)-1) <= 1
///   p'_f = p_f / sum_v p_f^(d(v)-1)             otherwise.
/// The paper notes this is precomputed once when the graph is loaded.
/// Degree-0 nodes contribute p_f^{-1}; they can never violate the guarantee
/// (their HKPR is exactly estimated as 0), so they are excluded from the sum.
double ComputePfPrime(const Graph& graph, double p_f);

/// omega for TEA (Algorithm 3, Line 5): 2(1+eps_r/3) ln(1/p'_f) / (eps_r^2 delta).
double OmegaTea(const ApproxParams& params, double pf_prime);

/// omega for TEA+ (Algorithm 5, Line 5): 8(1+eps_r/6) ln(1/p'_f) / (eps_r^2 delta).
double OmegaTeaPlus(const ApproxParams& params, double pf_prime);

/// Hop cap for HK-Push+ (Section 5.1 / Appendix A):
///   K = c * log(1/(eps_r*delta)) / log(avg_degree),
/// clamped to [1, max_hop]. `avg_degree` below e is clamped to e so the
/// logarithm stays positive and K stays finite on near-tree graphs.
uint32_t ChooseHopCap(double c, const ApproxParams& params, double avg_degree,
                      uint32_t max_hop);

}  // namespace hkpr

#endif  // HKPR_HKPR_PARAMS_H_
