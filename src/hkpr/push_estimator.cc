#include "hkpr/push_estimator.h"

#include <limits>

#include "common/logging.h"
#include "hkpr/push.h"

namespace hkpr {

PushOnlyEstimator::PushOnlyEstimator(const Graph& graph,
                                     const ApproxParams& params)
    : graph_(graph), params_(params), kernel_(params.t) {}

SparseVector PushOnlyEstimator::Estimate(NodeId seed, EstimatorStats* stats) {
  return EstimateWithFreshWorkspace(*this, seed, stats);
}

const SparseVector& PushOnlyEstimator::EstimateInto(NodeId seed,
                                                    QueryWorkspace& ws,
                                                    EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();

  HkPushPlusOptions options;
  options.eps_r = params_.eps_r;
  options.delta = params_.delta;
  // Full hop range: residues parked at MaxHop carry < the kernel's tail
  // tolerance, so draining every earlier hop certifies Inequality (11).
  options.hop_cap = kernel_.MaxHop();
  options.push_budget = std::numeric_limits<uint64_t>::max();
  options.enable_early_exit = true;
  const PushCounters push =
      HkPushPlusInto(graph_, kernel_, seed, options, ws);

  if (stats != nullptr) {
    stats->push_operations = push.push_operations;
    stats->entries_processed = push.entries_processed;
    stats->early_exit = push.hit_absolute_target;
    stats->peak_bytes = ws.residues.MemoryBytes() + ws.result.MemoryBytes();
  }
  return ws.result;
}

}  // namespace hkpr
