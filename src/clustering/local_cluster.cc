#include "clustering/local_cluster.h"

#include <utility>

#include "common/timer.h"

namespace hkpr {

LocalClusterResult LocalCluster(const Graph& graph, HkprEstimator& estimator,
                                NodeId seed,
                                const SweepOptions& sweep_options) {
  LocalClusterResult out;
  WallTimer total;

  WallTimer estimate_timer;
  SparseVector rho = estimator.Estimate(seed, &out.stats);
  out.estimate_ms = estimate_timer.ElapsedMillis();

  WallTimer sweep_timer;
  SweepResult sweep = SweepCut(graph, rho, sweep_options);
  out.sweep_ms = sweep_timer.ElapsedMillis();

  out.cluster = std::move(sweep.cluster);
  out.conductance = sweep.conductance;
  out.support_size = sweep.support_size;
  out.total_ms = total.ElapsedMillis();
  return out;
}

}  // namespace hkpr
