// Sweep cut over an approximate HKPR vector (Section 2.2).

#ifndef HKPR_CLUSTERING_SWEEP_H_
#define HKPR_CLUSTERING_SWEEP_H_

#include <cstdint>
#include <vector>

#include "common/sparse_vector.h"
#include "graph/graph.h"

namespace hkpr {

/// Result of a sweep over the support of an estimate.
struct SweepResult {
  /// Best prefix found (nodes in sweep order). Empty if the estimate had no
  /// usable support.
  std::vector<NodeId> cluster;
  /// Conductance of `cluster` (1.0 when empty).
  double conductance = 1.0;
  /// Number of candidate nodes inspected (|S*|).
  size_t support_size = 0;
  /// Conductance of every prefix, for diagnostics/plots:
  /// profile[i] = conductance of the first i+1 nodes.
  std::vector<double> profile;
};

/// Options controlling the sweep.
struct SweepOptions {
  /// Inspect at most this many prefixes (0 = unlimited). The paper sweeps
  /// the full support; benchmarks keep that default.
  size_t max_prefix = 0;
  /// Stop inspecting once the prefix volume exceeds this bound
  /// (0 = unlimited). Nibble-style local clustering uses such a cap to keep
  /// the answer local when the globally best cut is a near-bisection.
  uint64_t max_volume = 0;
  /// Record the per-prefix conductance profile.
  bool keep_profile = false;
};

/// Performs the three-step sweep of Section 2.2: take the nodes with
/// non-zero estimate, order by rho_hat[v]/d(v) descending, and return the
/// prefix with minimum conductance. Runs in O(|S*| log |S*| + vol(S*)) using
/// incremental cut/volume updates. The per-degree offset of `estimate` is
/// rank-invariant and therefore ignored, as the paper prescribes.
SweepResult SweepCut(const Graph& graph, const SparseVector& estimate,
                     const SweepOptions& options = SweepOptions());

}  // namespace hkpr

#endif  // HKPR_CLUSTERING_SWEEP_H_
