#include "clustering/sweep.h"

#include <algorithm>

#include "common/flat_map.h"

namespace hkpr {

SweepResult SweepCut(const Graph& graph, const SparseVector& estimate,
                     const SweepOptions& options) {
  SweepResult out;

  // Candidates: support of the estimate, excluding zero/negative entries and
  // isolated nodes (whose normalized score is undefined).
  struct Scored {
    NodeId node;
    double score;
  };
  std::vector<Scored> order;
  order.reserve(estimate.nnz());
  for (const auto& e : estimate.entries()) {
    if (e.value <= 0.0) continue;
    const uint32_t d = graph.Degree(e.key);
    if (d == 0) continue;
    order.push_back({e.key, e.value / d});
  }
  out.support_size = order.size();
  if (order.empty()) return out;

  std::sort(order.begin(), order.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;  // deterministic tie-break
  });

  const uint64_t total_volume = graph.Volume();
  const size_t limit = options.max_prefix == 0
                           ? order.size()
                           : std::min(options.max_prefix, order.size());

  FlatSet in_set(order.size());
  uint64_t volume = 0;
  uint64_t cut = 0;
  double best = 2.0;  // above any real conductance
  size_t best_prefix = 0;
  if (options.keep_profile) out.profile.reserve(limit);

  for (size_t i = 0; i < limit; ++i) {
    const NodeId v = order[i].node;
    const uint32_t d = graph.Degree(v);
    if (options.max_volume > 0 && volume + d > options.max_volume && i > 0) {
      break;  // volume cap reached; keep the best prefix found so far
    }
    uint64_t internal = 0;
    for (NodeId u : graph.Neighbors(v)) {
      if (in_set.Contains(u)) ++internal;
    }
    in_set.Insert(v);
    volume += d;
    // v contributes d new boundary arcs, minus 2 per edge into the set
    // (that edge stops being boundary and does not become one).
    cut += d - 2 * internal;

    const uint64_t denom = std::min(volume, total_volume - volume);
    const double phi =
        denom == 0 ? 1.0 : static_cast<double>(cut) / static_cast<double>(denom);
    if (options.keep_profile) out.profile.push_back(phi);
    if (denom > 0 && phi < best) {
      best = phi;
      best_prefix = i + 1;
    }
  }

  if (best_prefix == 0) return out;
  out.cluster.reserve(best_prefix);
  for (size_t i = 0; i < best_prefix; ++i) out.cluster.push_back(order[i].node);
  out.conductance = best;
  return out;
}

}  // namespace hkpr
