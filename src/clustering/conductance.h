// Cut, volume and conductance of node sets.

#ifndef HKPR_CLUSTERING_CONDUCTANCE_H_
#define HKPR_CLUSTERING_CONDUCTANCE_H_

#include <cstdint>
#include <span>

#include "graph/graph.h"

namespace hkpr {

/// Cut/volume/conductance of one node set.
struct CutStats {
  uint64_t cut = 0;         ///< edges with exactly one endpoint in the set
  uint64_t volume = 0;      ///< sum of degrees inside the set
  double conductance = 1.0; ///< cut / min(vol, 2m - vol); 1.0 if undefined
};

/// Computes cut, volume and conductance of `nodes` in O(vol(nodes)).
/// Duplicate ids in `nodes` are ignored. The conductance of the empty set
/// and of the full vertex set is defined as 1.0 (worst), matching the
/// sweep's conventions.
CutStats ComputeCutStats(const Graph& graph, std::span<const NodeId> nodes);

/// Convenience: conductance only.
double Conductance(const Graph& graph, std::span<const NodeId> nodes);

}  // namespace hkpr

#endif  // HKPR_CLUSTERING_CONDUCTANCE_H_
