#include "clustering/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/flat_map.h"
#include "common/logging.h"

namespace hkpr {

F1Stats ComputeF1(std::span<const NodeId> predicted,
                  std::span<const NodeId> ground_truth) {
  F1Stats out;
  FlatSet pred;
  for (NodeId v : predicted) pred.Insert(v);
  FlatSet truth;
  for (NodeId v : ground_truth) truth.Insert(v);
  if (pred.empty() || truth.empty()) return out;
  size_t hits = 0;
  pred.ForEach([&](NodeId v) {
    if (truth.Contains(v)) ++hits;
  });
  out.precision = static_cast<double>(hits) / static_cast<double>(pred.size());
  out.recall = static_cast<double>(hits) / static_cast<double>(truth.size());
  if (out.precision + out.recall > 0.0) {
    out.f1 = 2.0 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

double NdcgAtK(const Graph& graph, const SparseVector& estimate,
               const std::vector<double>& exact_normalized, size_t depth) {
  HKPR_CHECK(exact_normalized.size() == graph.NumNodes());
  if (depth == 0) return 1.0;

  // Predicted ranking: support sorted by normalized estimate.
  struct Scored {
    NodeId node;
    double score;
  };
  std::vector<Scored> predicted;
  predicted.reserve(estimate.nnz());
  for (const auto& e : estimate.entries()) {
    const uint32_t d = graph.Degree(e.key);
    if (d == 0 || e.value <= 0.0) continue;
    predicted.push_back({e.key, estimate.ValueWithOffset(e.key, d) / d});
  }
  auto by_score = [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  };
  std::sort(predicted.begin(), predicted.end(), by_score);

  // Ideal ranking over all nodes by exact normalized value.
  std::vector<double> ideal(exact_normalized);
  std::sort(ideal.begin(), ideal.end(), std::greater<double>());

  const size_t k = std::min(depth, ideal.size());
  double dcg = 0.0;
  double idcg = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double discount = 1.0 / std::log2(static_cast<double>(i) + 2.0);
    if (i < predicted.size()) {
      dcg += exact_normalized[predicted[i].node] * discount;
    }
    idcg += ideal[i] * discount;
  }
  return idcg > 0.0 ? dcg / idcg : 1.0;
}

double MaxNormalizedError(const Graph& graph, const SparseVector& estimate,
                          const std::vector<double>& exact) {
  HKPR_CHECK(exact.size() == graph.NumNodes());
  double worst = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    const uint32_t d = graph.Degree(v);
    if (d == 0) continue;
    const double err =
        std::abs(estimate.ValueWithOffset(v, d) - exact[v]) / d;
    if (err > worst) worst = err;
  }
  return worst;
}

size_t CountApproxViolations(const Graph& graph, const SparseVector& estimate,
                             const std::vector<double>& exact, double eps_r,
                             double delta, double slack) {
  HKPR_CHECK(exact.size() == graph.NumNodes());
  size_t violations = 0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    const uint32_t d = graph.Degree(v);
    if (d == 0) continue;
    const double exact_norm = exact[v] / d;
    const double est_norm = estimate.ValueWithOffset(v, d) / d;
    const double err = std::abs(est_norm - exact_norm);
    const double budget = exact_norm > delta ? eps_r * exact_norm : eps_r * delta;
    if (err > budget * slack) ++violations;
  }
  return violations;
}

}  // namespace hkpr
