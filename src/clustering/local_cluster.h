// End-to-end local clustering: estimate HKPR, then sweep.

#ifndef HKPR_CLUSTERING_LOCAL_CLUSTER_H_
#define HKPR_CLUSTERING_LOCAL_CLUSTER_H_

#include <vector>

#include "clustering/sweep.h"
#include "graph/graph.h"
#include "hkpr/estimator.h"

namespace hkpr {

/// Everything one local-clustering query produced.
struct LocalClusterResult {
  std::vector<NodeId> cluster;
  double conductance = 1.0;
  size_t support_size = 0;
  EstimatorStats stats;      ///< estimator work counters
  double estimate_ms = 0.0;  ///< HKPR estimation wall time
  double sweep_ms = 0.0;     ///< sweep wall time
  double total_ms = 0.0;
};

/// Runs `estimator` on `seed` and sweeps the resulting vector, timing both
/// phases. This is the operation the paper's Figures 4/7/8/9 measure.
LocalClusterResult LocalCluster(const Graph& graph, HkprEstimator& estimator,
                                NodeId seed,
                                const SweepOptions& sweep_options = {});

}  // namespace hkpr

#endif  // HKPR_CLUSTERING_LOCAL_CLUSTER_H_
