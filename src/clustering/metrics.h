// Clustering- and ranking-quality metrics (Sections 7.5, 7.6).

#ifndef HKPR_CLUSTERING_METRICS_H_
#define HKPR_CLUSTERING_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/sparse_vector.h"
#include "graph/graph.h"

namespace hkpr {

/// Precision / recall / F1 of a predicted node set against a ground truth
/// set (used by the Table 8 experiment).
struct F1Stats {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Computes set-overlap precision/recall/F1. Duplicates are ignored.
F1Stats ComputeF1(std::span<const NodeId> predicted,
                  std::span<const NodeId> ground_truth);

/// Normalized Discounted Cumulative Gain of the normalized-HKPR ranking
/// induced by `estimate` against the exact dense normalized values
/// (Section 7.5). The predicted ranking orders the estimate's support by
/// rho_hat[v]/d(v) descending (including any degree offset, which is
/// rank-invariant); relevance of a node is its exact normalized HKPR. The
/// ideal ranking orders all nodes by exact value. Gains are accumulated over
/// the top `depth` positions.
double NdcgAtK(const Graph& graph, const SparseVector& estimate,
               const std::vector<double>& exact_normalized, size_t depth);

/// Maximum degree-normalized absolute error of an estimate against the
/// exact dense HKPR vector: max_v |rho_hat[v] - rho[v]| / d(v). Used by
/// tests to validate HK-Relax's guarantee and Theorem 2.
double MaxNormalizedError(const Graph& graph, const SparseVector& estimate,
                          const std::vector<double>& exact);

/// Checks Definition 1 against an exact vector: returns the number of nodes
/// violating the (d, eps_r, delta)-approximation conditions (with a
/// multiplicative slack factor for floating-point robustness in tests).
size_t CountApproxViolations(const Graph& graph, const SparseVector& estimate,
                             const std::vector<double>& exact, double eps_r,
                             double delta, double slack = 1.0);

}  // namespace hkpr

#endif  // HKPR_CLUSTERING_METRICS_H_
