#include "clustering/conductance.h"

#include <algorithm>

#include "common/flat_map.h"

namespace hkpr {

CutStats ComputeCutStats(const Graph& graph, std::span<const NodeId> nodes) {
  CutStats out;
  FlatSet in_set(nodes.size());
  for (NodeId v : nodes) in_set.Insert(v);
  uint64_t internal_arcs = 0;
  in_set.ForEach([&](NodeId u) {
    out.volume += graph.Degree(u);
    for (NodeId v : graph.Neighbors(u)) {
      if (in_set.Contains(v)) ++internal_arcs;
    }
  });
  out.cut = out.volume - internal_arcs;  // internal arcs counted twice
  const uint64_t total = graph.Volume();
  const uint64_t denom = std::min(out.volume, total - out.volume);
  out.conductance =
      denom == 0 ? 1.0
                 : static_cast<double>(out.cut) / static_cast<double>(denom);
  return out;
}

double Conductance(const Graph& graph, std::span<const NodeId> nodes) {
  return ComputeCutStats(graph, nodes).conductance;
}

}  // namespace hkpr
