// Minimal data-parallel execution helpers.
//
// The paper notes (Section 6, citing Shun et al. VLDB'16) that HKPR
// estimation parallelizes well; this module provides the substrate the
// parallel estimators build on. Threads are spawned per call, which is
// acceptable for one-shot benchmark runs; repeated-query serving should use
// the persistent ThreadPool (parallel/thread_pool.h) instead, which keeps
// the same ParallelChunks partition but parks its workers between calls.

#ifndef HKPR_PARALLEL_PARALLEL_FOR_H_
#define HKPR_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace hkpr {

/// Number of hardware threads (at least 1).
inline uint32_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : static_cast<uint32_t>(hw);
}

/// Runs fn(thread_id) on `num_threads` threads and joins them. thread 0
/// runs on the calling thread.
inline void ParallelInvoke(uint32_t num_threads,
                           const std::function<void(uint32_t)>& fn) {
  if (num_threads <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_threads - 1);
  for (uint32_t tid = 1; tid < num_threads; ++tid) {
    workers.emplace_back(fn, tid);
  }
  fn(0);
  for (std::thread& w : workers) w.join();
}

/// Contiguous chunk [begin, end) of [0, total) for shard `tid` of `ways`;
/// chunk sizes differ by at most one item. Shared by ParallelChunks and
/// ThreadPool::ChunksLimit so their partitions cannot drift apart — the
/// pool's bit-identical-results guarantee depends on both using exactly
/// this decomposition.
struct ChunkRange {
  uint64_t begin;
  uint64_t end;
};

inline ChunkRange ChunkBounds(uint64_t total, uint32_t ways, uint32_t tid) {
  const uint64_t base = total / ways;
  const uint64_t remainder = total % ways;
  const uint64_t begin = tid * base + std::min<uint64_t>(tid, remainder);
  return {begin, begin + base + (tid < remainder ? 1 : 0)};
}

/// Splits [0, total) into `num_threads` contiguous chunks and runs
/// fn(thread_id, begin, end) in parallel. Chunks differ in size by at most
/// one item.
template <typename Fn>
void ParallelChunks(uint64_t total, uint32_t num_threads, Fn&& fn) {
  if (total == 0) return;
  if (num_threads > total) num_threads = static_cast<uint32_t>(total);
  ParallelInvoke(num_threads, [&](uint32_t tid) {
    const ChunkRange range = ChunkBounds(total, num_threads, tid);
    fn(tid, range.begin, range.end);
  });
}

}  // namespace hkpr

#endif  // HKPR_PARALLEL_PARALLEL_FOR_H_
