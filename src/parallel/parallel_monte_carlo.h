// Multi-threaded Monte-Carlo HKPR estimation.

#ifndef HKPR_PARALLEL_PARALLEL_MONTE_CARLO_H_
#define HKPR_PARALLEL_PARALLEL_MONTE_CARLO_H_

#include <string_view>

#include "hkpr/estimator.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/params.h"

namespace hkpr {

/// Monte-Carlo with the walk workload sharded over threads. Each thread
/// owns an independent RNG stream derived from (seed, thread id) and a
/// thread-local accumulator; results are merged once at the end, so the
/// output is deterministic for a fixed (seed, num_threads) pair and meets
/// the same (d, eps_r, delta) guarantee as the sequential estimator.
class ParallelMonteCarloEstimator : public HkprEstimator {
 public:
  /// `num_threads == 0` uses all hardware threads.
  ParallelMonteCarloEstimator(const Graph& graph, const ApproxParams& params,
                              uint64_t seed, uint32_t num_threads = 0);

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  std::string_view name() const override { return "Monte-Carlo(par)"; }

  uint64_t NumWalks() const { return num_walks_; }
  uint32_t num_threads() const { return num_threads_; }

 private:
  const Graph& graph_;
  ApproxParams params_;
  HeatKernel kernel_;
  uint64_t num_walks_;
  uint64_t base_seed_;
  uint32_t num_threads_;
  uint64_t epoch_ = 0;  // advances per query so repeated calls differ
};

}  // namespace hkpr

#endif  // HKPR_PARALLEL_PARALLEL_MONTE_CARLO_H_
