// Multi-threaded Monte-Carlo HKPR estimation.

#ifndef HKPR_PARALLEL_PARALLEL_MONTE_CARLO_H_
#define HKPR_PARALLEL_PARALLEL_MONTE_CARLO_H_

#include <string_view>

#include "hkpr/estimator.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/params.h"
#include "hkpr/walk_kernel.h"
#include "hkpr/workspace.h"
#include "parallel/thread_pool.h"

namespace hkpr {

/// Monte-Carlo with the walk workload sharded over threads. Each thread
/// owns an independent RNG stream derived from (seed, thread id) and a
/// thread-local accumulator; results are merged once at the end, so the
/// output is deterministic for a fixed (seed, num_threads) pair and meets
/// the same (d, eps_r, delta) guarantee as the sequential estimator.
///
/// With a ThreadPool attached, walk shards run on the pool's parked workers
/// (the chunk partition — and therefore the result — is identical to the
/// spawn-per-call path); without one, threads are spawned per call.
class ParallelMonteCarloEstimator : public HkprEstimator,
                                    public WorkspaceEstimator {
 public:
  /// `num_threads == 0` uses all hardware threads. `pool`, when non-null,
  /// must outlive the estimator and have at least 1 thread; shards beyond
  /// the pool size run inline. `pf_prime` is the precomputed Equation-(6)
  /// value for `params.p_f`; negative (the default) computes it here
  /// (cf. TeaPlusEstimator).
  ParallelMonteCarloEstimator(const Graph& graph, const ApproxParams& params,
                              uint64_t seed, uint32_t num_threads = 0,
                              ThreadPool* pool = nullptr,
                              double pf_prime = -1.0,
                              const WalkKernelOptions& walk_kernel =
                                  WalkKernelOptions());

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  /// Runs the query inside `ws` and returns a reference to `ws.result`.
  /// Allocation-free at steady state when a ThreadPool is attached.
  const SparseVector& EstimateInto(NodeId seed, QueryWorkspace& ws,
                                   EstimatorStats* stats = nullptr) override;

  /// Resets the walk RNG derivation: queries after a Reseed(s) replay the
  /// same randomness as a freshly constructed estimator with seed `s`
  /// (per-thread streams are re-derived from (s, epoch, thread id)).
  void Reseed(uint64_t seed) override {
    base_seed_ = seed;
    epoch_ = 0;
  }

  std::string_view name() const override { return "Monte-Carlo(par)"; }

  uint64_t NumWalks() const { return num_walks_; }
  uint32_t num_threads() const { return num_threads_; }

 private:
  const Graph& graph_;
  ApproxParams params_;
  HeatKernel kernel_;
  WalkKernelOptions walk_kernel_;
  uint64_t num_walks_;
  uint64_t base_seed_;
  uint32_t num_threads_;
  ThreadPool* pool_;
  uint64_t epoch_ = 0;  // advances per query so repeated calls differ
};

}  // namespace hkpr

#endif  // HKPR_PARALLEL_PARALLEL_MONTE_CARLO_H_
