// Persistent worker pool for repeated data-parallel phases.
//
// ParallelInvoke (parallel_for.h) spawns fresh std::threads on every call,
// which is fine for one-shot benchmarks but dominates latency when a serving
// frontend answers many small queries. ThreadPool keeps workers parked on a
// condition variable between calls, so dispatching a walk phase costs a
// notify + wakeup instead of thread creation, and the hot path performs no
// heap allocations (tasks are passed as a function pointer + context, never
// a std::function).
//
// The Chunks() entry point mirrors ParallelChunks exactly — same contiguous
// partition, same (thread_id, begin, end) callback — so the parallel
// estimators produce bit-identical results whether they run on a pool or on
// freshly spawned threads.

#ifndef HKPR_PARALLEL_THREAD_POOL_H_
#define HKPR_PARALLEL_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "parallel/parallel_for.h"

namespace hkpr {

/// A fixed-size pool of condition-variable-parked workers.
///
/// One dispatch at a time: Run/Invoke/Chunks block the calling thread until
/// the task completes, and the caller participates as thread 0. Submitting
/// from inside a pool task (nesting) is safe and falls back to running the
/// nested task inline on the calling worker. External submission from two
/// threads at once is not supported.
class ThreadPool {
 public:
  /// Plain task representation: no std::function, so dispatch never touches
  /// the heap. `ctx` points at caller-owned state (usually a stack lambda).
  using TaskFn = void (*)(void* ctx, uint32_t thread_id);

  /// `num_threads == 0` uses all hardware threads. The pool owns
  /// `num_threads - 1` workers; the submitting thread acts as thread 0.
  explicit ThreadPool(uint32_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// Runs fn(ctx, tid) for tid in [0, ways) and joins. The caller runs
  /// tid 0; parked workers take tids 1..num_threads()-1; shards beyond the
  /// pool size (`ways > num_threads()`) run inline on the caller, so a
  /// caller that partitions work `ways` ways gets exactly that partition
  /// regardless of the pool size. Allocation-free.
  void Run(uint32_t ways, TaskFn fn, void* ctx);

  /// Runs fn(tid) for tid in [0, ways); `fn` may be any callable (captured
  /// by reference on the caller's stack, so still allocation-free).
  template <typename Fn>
  void Invoke(uint32_t ways, Fn&& fn) {
    using Callable = std::remove_reference_t<Fn>;
    Run(
        ways,
        [](void* ctx, uint32_t tid) { (*static_cast<Callable*>(ctx))(tid); },
        const_cast<void*>(static_cast<const void*>(&fn)));
  }

  /// Splits [0, total) into contiguous chunks (identical partition to
  /// ParallelChunks) and runs fn(thread_id, begin, end) across the pool.
  template <typename Fn>
  void Chunks(uint64_t total, Fn&& fn) {
    ChunksLimit(total, num_threads_, std::forward<Fn>(fn));
  }

  /// Chunks() with exactly `max_ways` shards (clamped to `total`, not to
  /// the pool size) — the partition matches ParallelChunks(total, max_ways)
  /// even when `max_ways` exceeds the pool, so pool-backed estimators stay
  /// bit-identical to the spawn-per-call path for any pool size.
  template <typename Fn>
  void ChunksLimit(uint64_t total, uint32_t max_ways, Fn&& fn) {
    if (total == 0) return;
    uint32_t ways = max_ways;
    if (ways == 0) ways = 1;
    if (ways > total) ways = static_cast<uint32_t>(total);
    auto body = [&](uint32_t tid) {
      const ChunkRange range = ChunkBounds(total, ways, tid);
      fn(tid, range.begin, range.end);
    };
    Invoke(ways, body);
  }

 private:
  void WorkerLoop(uint32_t tid);
  bool OnWorkerThread() const;

  uint32_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new generation
  std::condition_variable done_cv_;  // submitter waits for pending_ == 0
  uint64_t generation_ = 0;
  uint32_t pending_ = 0;
  uint32_t active_ways_ = 0;
  TaskFn task_ = nullptr;
  void* ctx_ = nullptr;
  bool shutdown_ = false;
};

}  // namespace hkpr

#endif  // HKPR_PARALLEL_THREAD_POOL_H_
