#include "parallel/thread_pool.h"

namespace hkpr {

namespace {

/// Set while a thread is executing inside WorkerLoop. Used to detect nested
/// submission (a pool task dispatching to its own pool), which must run
/// inline: the outer dispatch owns the generation/pending state.
thread_local const ThreadPool* t_worker_pool = nullptr;

/// Set on the submitting thread for the duration of a dispatch. The caller
/// participates as thread 0, so a task it runs can also nest — that path
/// must run inline too, not start a second dispatch while workers are busy.
thread_local const ThreadPool* t_dispatching_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(num_threads == 0 ? HardwareThreads() : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t tid = 1; tid < num_threads_; ++tid) {
    workers_.emplace_back([this, tid] { WorkerLoop(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::OnWorkerThread() const {
  return t_worker_pool == this || t_dispatching_pool == this;
}

void ThreadPool::Run(uint32_t ways, TaskFn fn, void* ctx) {
  if (ways == 0) return;
  if (ways == 1 || workers_.empty() || OnWorkerThread()) {
    // Single-thread pools and nested submissions execute every shard inline
    // on the calling thread; the (tid, begin, end) decomposition is the
    // same, so results are unchanged.
    for (uint32_t tid = 0; tid < ways; ++tid) fn(ctx, tid);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = fn;
    ctx_ = ctx;
    active_ways_ = ways;
    pending_ = static_cast<uint32_t>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  t_dispatching_pool = this;
  fn(ctx, 0);
  // Shards beyond the pool size run inline on the caller, preserving the
  // requested partition (and therefore bit-identical results) when a
  // narrow pool serves a wider dispatch.
  for (uint32_t tid = num_threads_; tid < ways; ++tid) fn(ctx, tid);
  t_dispatching_pool = nullptr;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop(uint32_t tid) {
  t_worker_pool = this;
  uint64_t seen_generation = 0;
  for (;;) {
    TaskFn task;
    void* ctx;
    uint32_t ways;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      task = task_;
      ctx = ctx_;
      ways = active_ways_;
    }
    if (tid < ways) task(ctx, tid);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace hkpr
