// TEA+ with a multi-threaded random-walk phase.

#ifndef HKPR_PARALLEL_PARALLEL_TEA_PLUS_H_
#define HKPR_PARALLEL_PARALLEL_TEA_PLUS_H_

#include <string_view>

#include "hkpr/estimator.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/params.h"
#include "hkpr/tea_plus.h"
#include "hkpr/workspace.h"
#include "parallel/thread_pool.h"

namespace hkpr {

/// TEA+ whose walk phase (Lines 12-17 of Algorithm 5) is sharded over
/// threads. HK-Push+ stays sequential — its frontier is inherently ordered
/// and, in TEA+'s balanced configuration, accounts for about half the work;
/// the walk phase is embarrassingly parallel (each walk is independent and
/// the alias structure is read-only). Accuracy analysis is unchanged: the
/// union of per-thread walks is exactly the same set of i.i.d. samples.
///
/// With a ThreadPool attached, walk shards run on the pool's parked workers
/// (the chunk partition — and therefore the result — is identical to the
/// spawn-per-call path); without one, threads are spawned per call.
class ParallelTeaPlusEstimator : public HkprEstimator,
                                 public WorkspaceEstimator {
 public:
  /// `num_threads == 0` uses all hardware threads. `pool`, when non-null,
  /// must outlive the estimator; shards beyond the pool size run inline.
  /// `pf_prime` is the precomputed Equation-(6) value for `params.p_f`;
  /// negative (the default) computes it here (cf. TeaPlusEstimator).
  ParallelTeaPlusEstimator(const Graph& graph, const ApproxParams& params,
                           uint64_t seed, uint32_t num_threads = 0,
                           const TeaPlusOptions& options = TeaPlusOptions(),
                           ThreadPool* pool = nullptr,
                           double pf_prime = -1.0);

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  /// Runs the query inside `ws` and returns a reference to `ws.result`.
  /// Allocation-free at steady state when a ThreadPool is attached.
  const SparseVector& EstimateInto(NodeId seed, QueryWorkspace& ws,
                                   EstimatorStats* stats = nullptr) override;

  /// Resets the walk-phase RNG derivation: queries after a Reseed(s) replay
  /// the same randomness as a freshly constructed estimator with seed `s`
  /// (per-thread streams are re-derived from (s, epoch, thread id)).
  void Reseed(uint64_t seed) override {
    base_seed_ = seed;
    epoch_ = 0;
  }

  std::string_view name() const override { return "TEA+(par)"; }

  double omega() const { return omega_; }
  uint32_t hop_cap() const { return hop_cap_; }
  uint32_t num_threads() const { return num_threads_; }

 private:
  const Graph& graph_;
  ApproxParams params_;
  TeaPlusOptions options_;
  HeatKernel kernel_;
  double omega_;
  uint32_t hop_cap_;
  uint64_t push_budget_;
  uint64_t base_seed_;
  uint32_t num_threads_;
  ThreadPool* pool_;
  uint64_t epoch_ = 0;
};

}  // namespace hkpr

#endif  // HKPR_PARALLEL_PARALLEL_TEA_PLUS_H_
