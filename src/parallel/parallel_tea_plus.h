// TEA+ with a multi-threaded random-walk phase.

#ifndef HKPR_PARALLEL_PARALLEL_TEA_PLUS_H_
#define HKPR_PARALLEL_PARALLEL_TEA_PLUS_H_

#include <string_view>

#include "hkpr/estimator.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/params.h"
#include "hkpr/tea_plus.h"

namespace hkpr {

/// TEA+ whose walk phase (Lines 12-17 of Algorithm 5) is sharded over
/// threads. HK-Push+ stays sequential — its frontier is inherently ordered
/// and, in TEA+'s balanced configuration, accounts for about half the work;
/// the walk phase is embarrassingly parallel (each walk is independent and
/// the alias structure is read-only). Accuracy analysis is unchanged: the
/// union of per-thread walks is exactly the same set of i.i.d. samples.
class ParallelTeaPlusEstimator : public HkprEstimator {
 public:
  /// `num_threads == 0` uses all hardware threads.
  ParallelTeaPlusEstimator(const Graph& graph, const ApproxParams& params,
                           uint64_t seed, uint32_t num_threads = 0,
                           const TeaPlusOptions& options = TeaPlusOptions());

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  std::string_view name() const override { return "TEA+(par)"; }

  double omega() const { return omega_; }
  uint32_t hop_cap() const { return hop_cap_; }
  uint32_t num_threads() const { return num_threads_; }

 private:
  const Graph& graph_;
  ApproxParams params_;
  TeaPlusOptions options_;
  HeatKernel kernel_;
  double omega_;
  uint32_t hop_cap_;
  uint64_t push_budget_;
  uint64_t base_seed_;
  uint32_t num_threads_;
  uint64_t epoch_ = 0;
};

}  // namespace hkpr

#endif  // HKPR_PARALLEL_PARALLEL_TEA_PLUS_H_
