#include "parallel/parallel_monte_carlo.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "hkpr/random_walk.h"
#include "parallel/parallel_for.h"

namespace hkpr {

ParallelMonteCarloEstimator::ParallelMonteCarloEstimator(
    const Graph& graph, const ApproxParams& params, uint64_t seed,
    uint32_t num_threads, ThreadPool* pool, double pf_prime)
    : graph_(graph),
      params_(params),
      kernel_(params.t),
      base_seed_(seed),
      num_threads_(num_threads == 0 ? HardwareThreads() : num_threads),
      pool_(pool) {
  if (pf_prime < 0.0) pf_prime = ComputePfPrime(graph, params.p_f);
  num_walks_ = static_cast<uint64_t>(std::ceil(OmegaTea(params, pf_prime)));
  HKPR_CHECK(num_walks_ > 0);
}

SparseVector ParallelMonteCarloEstimator::Estimate(NodeId seed,
                                                   EstimatorStats* stats) {
  return EstimateWithFreshWorkspace(*this, seed, stats);
}

const SparseVector& ParallelMonteCarloEstimator::EstimateInto(
    NodeId seed, QueryWorkspace& ws, EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();
  const uint64_t epoch = epoch_++;

  ws.result.Clear();
  std::vector<WalkScratch>& locals = ws.ThreadScratch(num_threads_);
  const auto shard = [&](uint32_t tid, uint64_t begin, uint64_t end) {
    uint64_t mix = base_seed_ ^ (epoch * 0x9E3779B97F4A7C15ULL);
    mix ^= (static_cast<uint64_t>(tid) + 1) * 0xD1B54A32D192ED03ULL;
    Rng rng(mix);
    WalkScratch& state = locals[tid];
    for (uint64_t i = begin; i < end; ++i) {
      const NodeId v = KRandomWalk(graph_, kernel_, seed, 0, rng, &state.steps);
      state.counts.Add(v, 1.0);
    }
  };
  if (pool_ != nullptr) {
    pool_->ChunksLimit(num_walks_, num_threads_, shard);
  } else {
    ParallelChunks(num_walks_, num_threads_, shard);
  }

  SparseVector& rho = ws.result;
  const double weight = 1.0 / static_cast<double>(num_walks_);
  uint64_t steps = 0;
  size_t peak = 0;
  for (const WalkScratch& state : locals) {
    for (const auto& e : state.counts.entries()) {
      rho.Add(e.key, e.value * weight);
    }
    steps += state.steps;
    peak += state.counts.MemoryBytes();
  }
  if (stats != nullptr) {
    stats->num_walks = num_walks_;
    stats->walk_steps = steps;
    stats->peak_bytes = peak + rho.MemoryBytes();
  }
  return rho;
}

}  // namespace hkpr
