#include "parallel/parallel_monte_carlo.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "hkpr/random_walk.h"
#include "parallel/parallel_for.h"

namespace hkpr {

ParallelMonteCarloEstimator::ParallelMonteCarloEstimator(
    const Graph& graph, const ApproxParams& params, uint64_t seed,
    uint32_t num_threads, ThreadPool* pool, double pf_prime,
    const WalkKernelOptions& walk_kernel)
    : graph_(graph),
      params_(params),
      kernel_(params.t),
      walk_kernel_(walk_kernel),
      base_seed_(seed),
      num_threads_(num_threads == 0 ? HardwareThreads() : num_threads),
      pool_(pool) {
  if (pf_prime < 0.0) pf_prime = ComputePfPrime(graph, params.p_f);
  num_walks_ = static_cast<uint64_t>(std::ceil(OmegaTea(params, pf_prime)));
  HKPR_CHECK(num_walks_ > 0);
}

SparseVector ParallelMonteCarloEstimator::Estimate(NodeId seed,
                                                   EstimatorStats* stats) {
  return EstimateWithFreshWorkspace(*this, seed, stats);
}

const SparseVector& ParallelMonteCarloEstimator::EstimateInto(
    NodeId seed, QueryWorkspace& ws, EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();
  const uint64_t epoch = epoch_++;

  ws.result.Clear();
  SparseVector& rho = ws.result;
  const double weight = 1.0 / static_cast<double>(num_walks_);
  uint64_t steps = 0;
  size_t peak = 0;
  std::vector<WalkScratch>& locals = ws.ThreadScratch(num_threads_);
  if (walk_kernel_.type == WalkKernelType::kScalar) {
    // Legacy path: per-thread sequential Rng streams and per-thread counts
    // merged after the barrier. Deterministic for a fixed
    // (seed, num_threads) but not across thread counts.
    const auto shard = [&](uint32_t tid, uint64_t begin, uint64_t end) {
      uint64_t mix = base_seed_ ^ (epoch * 0x9E3779B97F4A7C15ULL);
      mix ^= (static_cast<uint64_t>(tid) + 1) * 0xD1B54A32D192ED03ULL;
      Rng rng(mix);
      WalkScratch& state = locals[tid];
      for (uint64_t i = begin; i < end; ++i) {
        const NodeId v =
            KRandomWalk(graph_, kernel_, seed, 0, rng, &state.steps);
        state.counts.Add(v, 1.0);
      }
    };
    if (pool_ != nullptr) {
      pool_->ChunksLimit(num_walks_, num_threads_, shard);
    } else {
      ParallelChunks(num_walks_, num_threads_, shard);
    }
    for (const WalkScratch& state : locals) {
      for (const auto& e : state.counts.entries()) {
        rho.Add(e.key, e.value * weight);
      }
      steps += state.steps;
      peak += state.counts.MemoryBytes();
    }
  } else {
    // Interleaved kernel: shards write disjoint ranges of the shared end
    // buffer; the index-order merge makes the result bit-identical to the
    // sequential estimator, for any thread count or chunking.
    ws.walk_ends.resize(num_walks_);
    const uint64_t stream_seed = WalkStreamSeed(base_seed_, epoch);
    WalkStartSet start_set;
    start_set.fixed_node = seed;
    const auto shard = [&](uint32_t tid, uint64_t begin, uint64_t end) {
      locals[tid].steps = RunInterleavedWalks(
          graph_, kernel_, start_set, stream_seed, begin, end - begin,
          ws.walk_ends.data() + begin,
          EffectiveWalkWidth(graph_, walk_kernel_));
    };
    if (pool_ != nullptr) {
      pool_->ChunksLimit(num_walks_, num_threads_, shard);
    } else {
      ParallelChunks(num_walks_, num_threads_, shard);
    }
    for (uint64_t i = 0; i < num_walks_; ++i) {
      rho.Add(ws.walk_ends[i], weight);
    }
    for (const WalkScratch& state : locals) steps += state.steps;
    peak += ws.walk_ends.capacity() * sizeof(NodeId);
  }
  if (stats != nullptr) {
    stats->num_walks = num_walks_;
    stats->walk_steps = steps;
    stats->peak_bytes = peak + rho.MemoryBytes();
  }
  return rho;
}

}  // namespace hkpr
