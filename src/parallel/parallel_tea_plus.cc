#include "parallel/parallel_tea_plus.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "hkpr/push.h"
#include "hkpr/random_walk.h"
#include "hkpr/walk_kernel.h"
#include "parallel/parallel_for.h"

namespace hkpr {

ParallelTeaPlusEstimator::ParallelTeaPlusEstimator(
    const Graph& graph, const ApproxParams& params, uint64_t seed,
    uint32_t num_threads, const TeaPlusOptions& options, ThreadPool* pool,
    double pf_prime)
    : graph_(graph),
      params_(params),
      options_(options),
      kernel_(params.t),
      base_seed_(seed),
      num_threads_(num_threads == 0 ? HardwareThreads() : num_threads),
      pool_(pool) {
  if (pf_prime < 0.0) pf_prime = ComputePfPrime(graph, params.p_f);
  omega_ = OmegaTeaPlus(params, pf_prime);
  push_budget_ = static_cast<uint64_t>(std::ceil(omega_ * params.t / 2.0));
  hop_cap_ = ChooseHopCap(options.c, params, graph.AverageDegree(),
                          kernel_.MaxHop());
}

SparseVector ParallelTeaPlusEstimator::Estimate(NodeId seed,
                                                EstimatorStats* stats) {
  return EstimateWithFreshWorkspace(*this, seed, stats);
}

const SparseVector& ParallelTeaPlusEstimator::EstimateInto(
    NodeId seed, QueryWorkspace& ws, EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();
  const double eps_delta = params_.eps_r * params_.delta;
  const uint64_t epoch = epoch_++;

  // Sequential phase: budgeted push, early-exit test, residue reduction —
  // identical to the sequential TEA+ (see tea_plus.cc).
  HkPushPlusOptions push_options;
  push_options.eps_r = params_.eps_r;
  push_options.delta = params_.delta;
  push_options.hop_cap = hop_cap_;
  push_options.push_budget = push_budget_;
  push_options.enable_early_exit = options_.enable_early_exit;
  const PushCounters push =
      HkPushPlusInto(graph_, kernel_, seed, push_options, ws);
  SparseVector& rho = ws.result;

  if (stats != nullptr) {
    stats->push_operations = push.push_operations;
    stats->entries_processed = push.entries_processed;
  }

  const bool absolute_ok =
      push.hit_absolute_target ||
      ws.residues.MaxNormalizedResidueSum(graph_) <= eps_delta;
  if (absolute_ok) {
    if (stats != nullptr) {
      stats->early_exit = true;
      stats->peak_bytes = ws.residues.MemoryBytes() + rho.MemoryBytes();
    }
    return rho;
  }

  if (options_.enable_residue_reduction) {
    ReduceResidues(graph_, options_, eps_delta, ws.residues);
  }

  // Parallel walk phase.
  const double alpha = ws.residues.TotalSum();
  const uint64_t num_walks =
      alpha > 0.0 ? static_cast<uint64_t>(std::ceil(alpha * omega_)) : 0;
  uint64_t steps = 0;
  size_t alias_bytes = 0;
  if (num_walks > 0) {
    ws.CollectWalkStarts();  // alias table is read-only during the walks
    alias_bytes = ws.alias.MemoryBytes() +
                  ws.starts.capacity() * sizeof(ws.starts[0]) +
                  ws.weights.capacity() * sizeof(double);

    const double increment = alpha / static_cast<double>(num_walks);
    std::vector<WalkScratch>& locals = ws.ThreadScratch(num_threads_);
    if (options_.walk_kernel.type == WalkKernelType::kScalar) {
      // Legacy path: per-thread sequential Rng streams and per-thread
      // end-point counts merged after the barrier. Deterministic for a
      // fixed (seed, num_threads) but not across thread counts.
      const auto shard = [&](uint32_t tid, uint64_t begin, uint64_t end) {
        uint64_t mix = base_seed_ ^ (epoch * 0x9E3779B97F4A7C15ULL);
        mix ^= (static_cast<uint64_t>(tid) + 1) * 0xD1B54A32D192ED03ULL;
        Rng rng(mix);
        WalkScratch& state = locals[tid];
        for (uint64_t i = begin; i < end; ++i) {
          const auto [u, k] = ws.starts[ws.alias.Sample(rng)];
          const NodeId end_node =
              KRandomWalk(graph_, kernel_, u, k, rng, &state.steps);
          state.counts.Add(end_node, 1.0);
        }
      };
      if (pool_ != nullptr) {
        pool_->ChunksLimit(num_walks, num_threads_, shard);
      } else {
        ParallelChunks(num_walks, num_threads_, shard);
      }
      for (const WalkScratch& state : locals) {
        for (const auto& e : state.counts.entries()) {
          rho.Add(e.key, e.value * increment);
        }
        steps += state.steps;
        alias_bytes += state.counts.MemoryBytes();
      }
    } else {
      // Interleaved kernel: walk i's end node is a pure function of its
      // index, so shards write disjoint ranges of the shared end buffer and
      // the index-order merge makes the result bit-identical to the
      // sequential estimator, for any thread count or chunking.
      ws.walk_ends.resize(num_walks);
      const uint64_t stream_seed = WalkStreamSeed(base_seed_, epoch);
      const WalkStartSet start_set{&ws.alias, ws.starts.data(), 0};
      const auto shard = [&](uint32_t tid, uint64_t begin, uint64_t end) {
        locals[tid].steps = RunInterleavedWalks(
            graph_, kernel_, start_set, stream_seed, begin, end - begin,
            ws.walk_ends.data() + begin,
            EffectiveWalkWidth(graph_, options_.walk_kernel));
      };
      if (pool_ != nullptr) {
        pool_->ChunksLimit(num_walks, num_threads_, shard);
      } else {
        ParallelChunks(num_walks, num_threads_, shard);
      }
      for (uint64_t i = 0; i < num_walks; ++i) {
        rho.Add(ws.walk_ends[i], increment);
      }
      for (const WalkScratch& state : locals) steps += state.steps;
      alias_bytes += ws.walk_ends.capacity() * sizeof(NodeId);
    }
  }

  if (options_.enable_residue_reduction) {
    rho.set_degree_offset(eps_delta / 2.0);
  }
  if (stats != nullptr) {
    stats->num_walks = num_walks;
    stats->walk_steps = steps;
    stats->peak_bytes =
        ws.residues.MemoryBytes() + rho.MemoryBytes() + alias_bytes;
  }
  return rho;
}

}  // namespace hkpr
