#include "parallel/parallel_tea_plus.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/alias_sampler.h"
#include "common/logging.h"
#include "common/random.h"
#include "hkpr/push.h"
#include "hkpr/random_walk.h"
#include "parallel/parallel_for.h"

namespace hkpr {

ParallelTeaPlusEstimator::ParallelTeaPlusEstimator(
    const Graph& graph, const ApproxParams& params, uint64_t seed,
    uint32_t num_threads, const TeaPlusOptions& options)
    : graph_(graph),
      params_(params),
      options_(options),
      kernel_(params.t),
      base_seed_(seed),
      num_threads_(num_threads == 0 ? HardwareThreads() : num_threads) {
  const double pf_prime = ComputePfPrime(graph, params.p_f);
  omega_ = OmegaTeaPlus(params, pf_prime);
  push_budget_ = static_cast<uint64_t>(std::ceil(omega_ * params.t / 2.0));
  hop_cap_ = ChooseHopCap(options.c, params, graph.AverageDegree(),
                          kernel_.MaxHop());
}

SparseVector ParallelTeaPlusEstimator::Estimate(NodeId seed,
                                                EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();
  const double eps_delta = params_.eps_r * params_.delta;
  const uint64_t epoch = epoch_++;

  // Sequential phase: budgeted push, early-exit test, residue reduction —
  // identical to the sequential TEA+ (see tea_plus.cc).
  HkPushPlusOptions push_options;
  push_options.eps_r = params_.eps_r;
  push_options.delta = params_.delta;
  push_options.hop_cap = hop_cap_;
  push_options.push_budget = push_budget_;
  push_options.enable_early_exit = options_.enable_early_exit;
  PushResult push = HkPushPlus(graph_, kernel_, seed, push_options);
  SparseVector rho = std::move(push.reserve);

  if (stats != nullptr) {
    stats->push_operations = push.push_operations;
    stats->entries_processed = push.entries_processed;
  }

  const bool absolute_ok =
      push.hit_absolute_target ||
      push.residues.MaxNormalizedResidueSum(graph_) <= eps_delta;
  if (absolute_ok) {
    if (stats != nullptr) {
      stats->early_exit = true;
      stats->peak_bytes = push.residues.MemoryBytes() + rho.MemoryBytes();
    }
    return rho;
  }

  ResidueTable& residues = push.residues;
  if (options_.enable_residue_reduction) {
    const double total = residues.TotalSum();
    if (total > 0.0) {
      const uint32_t num_hops = residues.max_hop() + 1;
      for (uint32_t k = 0; k < num_hops; ++k) {
        const double beta_k =
            options_.beta_mode == BetaMode::kProportionalToHopSum
                ? residues.HopSum(k) / total
                : 1.0 / static_cast<double>(num_hops);
        if (beta_k <= 0.0) continue;
        const double cut = beta_k * eps_delta;
        for (auto& e : residues.MutableHop(k).mutable_entries()) {
          if (e.value <= 0.0) continue;
          const double reduced = e.value - cut * graph_.Degree(e.key);
          e.value = reduced > 0.0 ? reduced : 0.0;
        }
      }
      residues.RecomputeSums();
    }
  }

  // Parallel walk phase.
  const double alpha = residues.TotalSum();
  const uint64_t num_walks =
      alpha > 0.0 ? static_cast<uint64_t>(std::ceil(alpha * omega_)) : 0;
  uint64_t steps = 0;
  size_t alias_bytes = 0;
  if (num_walks > 0) {
    std::vector<std::pair<NodeId, uint32_t>> starts;
    std::vector<double> weights;
    starts.reserve(residues.TotalNonZeros());
    weights.reserve(residues.TotalNonZeros());
    for (uint32_t k = 0; k <= residues.max_hop(); ++k) {
      for (const auto& e : residues.Hop(k).entries()) {
        if (e.value > 0.0) {
          starts.emplace_back(e.key, k);
          weights.push_back(e.value);
        }
      }
    }
    const AliasSampler alias(weights);  // read-only during the walks
    alias_bytes = alias.MemoryBytes() + starts.capacity() * sizeof(starts[0]) +
                  weights.capacity() * sizeof(double);

    struct ThreadState {
      SparseVector counts;
      uint64_t steps = 0;
    };
    std::vector<ThreadState> locals(num_threads_);
    ParallelChunks(
        num_walks, num_threads_,
        [&](uint32_t tid, uint64_t begin, uint64_t end) {
          uint64_t mix = base_seed_ ^ (epoch * 0x9E3779B97F4A7C15ULL);
          mix ^= (static_cast<uint64_t>(tid) + 1) * 0xD1B54A32D192ED03ULL;
          Rng rng(mix);
          ThreadState& state = locals[tid];
          for (uint64_t i = begin; i < end; ++i) {
            const auto [u, k] = starts[alias.Sample(rng)];
            const NodeId end_node =
                KRandomWalk(graph_, kernel_, u, k, rng, &state.steps);
            state.counts.Add(end_node, 1.0);
          }
        });

    const double increment = alpha / static_cast<double>(num_walks);
    for (const ThreadState& state : locals) {
      for (const auto& e : state.counts.entries()) {
        rho.Add(e.key, e.value * increment);
      }
      steps += state.steps;
      alias_bytes += state.counts.MemoryBytes();
    }
  }

  if (options_.enable_residue_reduction) {
    rho.set_degree_offset(eps_delta / 2.0);
  }
  if (stats != nullptr) {
    stats->num_walks = num_walks;
    stats->walk_steps = steps;
    stats->peak_bytes =
        residues.MemoryBytes() + rho.MemoryBytes() + alias_bytes;
  }
  return rho;
}

}  // namespace hkpr
