#include "baselines/crd.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "clustering/sweep.h"
#include "common/flat_map.h"
#include "common/logging.h"
#include "common/sparse_vector.h"

namespace hkpr {

namespace {

/// State of the diffusion, sparse over touched nodes.
struct DiffusionState {
  FlatMap<double> mass;
  FlatMap<uint32_t> label;
  /// Flow sent over each directed arc this inner round, keyed by the arc's
  /// index in the CSR adjacency array (reset between rounds).
  FlatMap<double> arc_flow;
};

/// Push-relabel unit flow: routes excess mass (above d(v)) downhill along
/// admissible arcs (label difference exactly 1, arc flow below capacity).
/// Returns the total mass trapped at the height cap.
double UnitFlow(const Graph& graph, DiffusionState& state,
                const CrdOptions& options, uint64_t* work) {
  state.arc_flow.Clear();
  std::deque<NodeId> active;
  FlatMap<bool> queued;

  const auto excess = [&](NodeId v) {
    return state.mass.GetOr(v, 0.0) - static_cast<double>(graph.Degree(v));
  };
  const auto activate = [&](NodeId v) {
    if (excess(v) <= 1e-12) return;
    if (state.label.GetOr(v, 0) >= options.height_cap) return;
    bool& flag = queued[v];
    if (!flag) {
      flag = true;
      active.push_back(v);
    }
  };

  for (const auto& e : state.mass.entries()) activate(e.key);

  while (!active.empty()) {
    const NodeId v = active.front();
    active.pop_front();
    queued[v] = false;
    double ex = excess(v);
    if (ex <= 1e-12) continue;
    uint32_t& lv = state.label[v];
    if (lv >= options.height_cap) continue;

    const uint64_t row_begin = graph.RowStart(v);
    auto nbrs = graph.Neighbors(v);
    bool admissible_found = false;
    for (size_t i = 0; i < nbrs.size() && ex > 1e-12; ++i) {
      const NodeId u = nbrs[i];
      if (state.label.GetOr(u, 0) + 1 != lv) continue;
      const uint32_t arc = static_cast<uint32_t>(row_begin + i);
      double& used = state.arc_flow[arc];
      const double room = options.capacity - used;
      if (room <= 1e-12) continue;
      admissible_found = true;
      const double amount = std::min(ex, room);
      used += amount;
      state.mass[v] -= amount;
      state.mass[u] += amount;
      ex -= amount;
      if (work != nullptr) ++*work;
      activate(u);
    }
    if (ex > 1e-12) {
      if (!admissible_found) ++lv;  // relabel
      activate(v);
    }
  }

  double trapped = 0.0;
  for (const auto& e : state.mass.entries()) {
    if (state.label.GetOr(e.key, 0) >= options.height_cap) {
      const double ex = e.value - graph.Degree(e.key);
      if (ex > 0.0) trapped += ex;
    }
  }
  return trapped;
}

}  // namespace

FlowClusterResult Crd(const Graph& graph, NodeId seed,
                      const CrdOptions& options) {
  HKPR_CHECK(seed < graph.NumNodes());
  FlowClusterResult out;
  const uint32_t seed_degree = graph.Degree(seed);
  if (seed_degree == 0) return out;

  DiffusionState state;
  // Start with twice the seed's absorbing capacity so the first round
  // already spills to the neighborhood.
  state.mass[seed] = 2.0 * seed_degree;

  uint64_t work = 0;
  double total_mass = state.mass[seed];
  for (uint32_t iter = 0; iter < options.iterations; ++iter) {
    const double trapped = UnitFlow(graph, state, options, &work);
    ++out.flow_rounds;
    if (trapped > options.trapped_fraction * total_mass) break;
    // Double the mass everywhere it settled (capacity releasing step).
    total_mass = 0.0;
    for (auto& e : state.mass.mutable_entries()) {
      e.value *= 2.0;
      total_mass += e.value;
    }
    // Labels reset each outer phase, as in the reference description.
    state.label.Clear();
  }
  out.total_arcs = work;

  // Extract the cluster: sweep over settled mass / degree.
  SparseVector score;
  for (const auto& e : state.mass.entries()) {
    if (e.value > 0.0) score.Add(e.key, e.value);
  }
  SweepResult sweep = SweepCut(graph, score);
  out.cluster = std::move(sweep.cluster);
  out.conductance = sweep.conductance;
  return out;
}

}  // namespace hkpr
