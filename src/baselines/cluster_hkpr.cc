#include "baselines/cluster_hkpr.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hkpr {

ClusterHkprEstimator::ClusterHkprEstimator(const Graph& graph,
                                           const ClusterHkprOptions& options,
                                           uint64_t seed)
    : graph_(graph), options_(options), kernel_(options.t), rng_(seed) {
  HKPR_CHECK(options.eps > 0.0 && options.eps < 1.0);
  HKPR_CHECK(graph.NumNodes() >= 2);
  const double theoretical =
      16.0 * std::log(static_cast<double>(graph.NumNodes())) /
      (options.eps * options.eps * options.eps);
  num_walks_ = std::min<uint64_t>(options.max_walks,
                                  static_cast<uint64_t>(std::ceil(theoretical)));
  HKPR_CHECK(num_walks_ > 0);
  length_cap_ = options.length_cap == 0
                    ? kernel_.MaxHop()
                    : std::min(options.length_cap, kernel_.MaxHop());
}

SparseVector ClusterHkprEstimator::Estimate(NodeId seed,
                                            EstimatorStats* stats) {
  // Runs in a fresh workspace, so the by-value path consumes exactly the
  // same RNG stream and produces exactly the same adds as EstimateInto —
  // bit-identical by construction.
  return EstimateWithFreshWorkspace(*this, seed, stats);
}

const SparseVector& ClusterHkprEstimator::EstimateInto(NodeId seed,
                                                       QueryWorkspace& ws,
                                                       EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();
  ws.result.Clear();
  SparseVector& rho = ws.result;
  const double weight = 1.0 / static_cast<double>(num_walks_);
  uint64_t steps = 0;
  for (uint64_t i = 0; i < num_walks_; ++i) {
    // Draw the Poisson length first (as in the original algorithm), truncate
    // at the cap, then walk.
    uint32_t length = std::min(kernel_.SamplePoissonLength(rng_), length_cap_);
    NodeId current = seed;
    for (uint32_t step = 0; step < length; ++step) {
      if (graph_.Degree(current) == 0) break;
      current = graph_.RandomNeighbor(current, rng_);
      ++steps;
    }
    rho.Add(current, weight);
  }
  if (stats != nullptr) {
    stats->num_walks = num_walks_;
    stats->walk_steps = steps;
    stats->peak_bytes = rho.MemoryBytes();
  }
  return rho;
}

}  // namespace hkpr
