// CRD — Capacity Releasing Diffusion (Wang, Fountoulakis, Henzinger,
// Mahoney & Rao, ICML 2017).
//
// A flow-based diffusion: mass starts at the seed, doubles every outer
// iteration, and is routed by a push-relabel "unit flow" with per-edge
// capacity U and height cap h. When the diffusion can no longer settle its
// mass the saturated region is a low-conductance cluster, extracted here by
// a sweep over settled mass / degree. Implementation notes in DESIGN.md.

#ifndef HKPR_BASELINES_CRD_H_
#define HKPR_BASELINES_CRD_H_

#include <cstdint>

#include "baselines/simple_local.h"  // FlowClusterResult
#include "graph/graph.h"

namespace hkpr {

/// Options of CRD. The paper's experiment sweeps `iterations` in {7..30}
/// and keeps the other knobs at defaults.
struct CrdOptions {
  /// Outer iterations: each doubles the diffused mass.
  uint32_t iterations = 10;
  /// Per-edge flow capacity U per inner round.
  double capacity = 4.0;
  /// Height (label) cap h of the push-relabel inner loop.
  uint32_t height_cap = 30;
  /// Stop the outer loop once this fraction of the mass is trapped at the
  /// height cap (the diffusion has hit a bottleneck).
  double trapped_fraction = 0.1;
};

/// Runs CRD from `seed` and extracts the best sweep cut over settled mass.
FlowClusterResult Crd(const Graph& graph, NodeId seed,
                      const CrdOptions& options);

}  // namespace hkpr

#endif  // HKPR_BASELINES_CRD_H_
