#include "baselines/simple_local.h"

#include <algorithm>

#include "clustering/conductance.h"
#include "common/flat_map.h"
#include "common/logging.h"
#include "flow/maxflow.h"
#include "graph/subgraph.h"

namespace hkpr {

std::vector<NodeId> MqiImprove(const Graph& graph,
                               std::vector<NodeId> candidate,
                               uint32_t max_rounds, uint32_t* rounds_used,
                               uint64_t* total_arcs) {
  uint32_t rounds = 0;
  uint64_t arcs = 0;
  while (rounds < max_rounds && candidate.size() >= 2) {
    const CutStats stats = ComputeCutStats(graph, candidate);
    if (stats.cut == 0 || stats.volume == 0) break;  // already perfect
    const int64_t vol = static_cast<int64_t>(stats.volume);
    const int64_t cut = static_cast<int64_t>(stats.cut);

    // Lang-Rao network: source -> v with capacity vol(A) per boundary edge
    // of v; internal edges with capacity vol(A); v -> sink with capacity
    // cut(A) * d(v). A strictly better quotient subset exists iff
    // maxflow < cut(A) * vol(A); it is the sink side of the min cut.
    FlatMap<uint32_t> local_id(candidate.size());
    for (uint32_t i = 0; i < candidate.size(); ++i) {
      local_id[candidate[i]] = i;
    }
    const uint32_t num_local = static_cast<uint32_t>(candidate.size());
    const uint32_t source = num_local;
    const uint32_t sink = num_local + 1;
    FlowNetwork network(num_local + 2);
    for (uint32_t i = 0; i < num_local; ++i) {
      const NodeId v = candidate[i];
      uint32_t boundary = 0;
      for (NodeId u : graph.Neighbors(v)) {
        const uint32_t* j = local_id.Find(u);
        if (j == nullptr) {
          ++boundary;
        } else if (*j > i) {
          network.AddUndirectedEdge(i, *j, vol);
        }
      }
      if (boundary > 0) {
        network.AddArc(source, i, vol * static_cast<int64_t>(boundary));
      }
      network.AddArc(i, sink, cut * static_cast<int64_t>(graph.Degree(v)));
    }
    arcs += network.num_arcs();

    const int64_t flow = network.MaxFlow(source, sink);
    ++rounds;
    if (flow >= cut * vol) break;  // no strictly better subset

    const std::vector<bool> source_side = network.MinCutSourceSide(source);
    std::vector<NodeId> improved;
    improved.reserve(candidate.size());
    for (uint32_t i = 0; i < num_local; ++i) {
      if (!source_side[i]) improved.push_back(candidate[i]);
    }
    if (improved.empty() || improved.size() == candidate.size()) break;
    candidate = std::move(improved);
  }
  if (rounds_used != nullptr) *rounds_used += rounds;
  if (total_arcs != nullptr) *total_arcs += arcs;
  return candidate;
}

FlowClusterResult SimpleLocal(const Graph& graph, NodeId seed,
                              const SimpleLocalOptions& options, Rng& rng) {
  HKPR_CHECK(seed < graph.NumNodes());
  FlowClusterResult out;
  const uint32_t target = std::clamp<uint32_t>(
      static_cast<uint32_t>(options.locality *
                            static_cast<double>(graph.NumNodes())),
      options.min_ball_nodes, options.max_ball_nodes);
  std::vector<NodeId> ball = RandomBfsBall(graph, seed, target, rng);
  if (ball.empty()) return out;

  std::vector<NodeId> improved =
      MqiImprove(graph, std::move(ball), options.max_rounds, &out.flow_rounds,
                 &out.total_arcs);
  // MQI can cut the seed out of its own cluster; the convention of local
  // clustering is that the answer contains the seed, so fall back to the
  // ball when that happens.
  const bool has_seed =
      std::find(improved.begin(), improved.end(), seed) != improved.end();
  if (!has_seed) {
    improved = RandomBfsBall(graph, seed, target, rng);
  }
  out.conductance = Conductance(graph, improved);
  out.cluster = std::move(improved);
  return out;
}

}  // namespace hkpr
