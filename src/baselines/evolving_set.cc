#include "baselines/evolving_set.h"

#include <algorithm>

#include "clustering/conductance.h"
#include "common/flat_map.h"
#include "common/logging.h"

namespace hkpr {

namespace {

/// One lazy evolving-set step: S' = { v : p(v -> S) >= threshold } where
/// candidates are S and its out-neighbors. O(vol(S)).
std::vector<NodeId> EvolveOnce(const Graph& graph,
                               const std::vector<NodeId>& current,
                               double threshold) {
  FlatSet in_set(current.size());
  for (NodeId v : current) in_set.Insert(v);

  // Count, for every candidate, how many of its neighbors are inside S.
  FlatMap<uint32_t> inside_neighbors(current.size() * 2);
  for (NodeId v : current) {
    for (NodeId u : graph.Neighbors(v)) {
      inside_neighbors[u] += 1;
    }
  }

  std::vector<NodeId> next;
  next.reserve(current.size());
  const auto transition = [&](NodeId v, uint32_t inside) {
    const uint32_t d = graph.Degree(v);
    if (d == 0) return in_set.Contains(v) ? 1.0 : 0.0;
    const double walk = static_cast<double>(inside) / d;
    return 0.5 * ((in_set.Contains(v) ? 1.0 : 0.0) + walk);
  };
  for (const auto& e : inside_neighbors.entries()) {
    if (transition(e.key, e.value) >= threshold) next.push_back(e.key);
  }
  // Members of S with no inside neighbors (possible for stragglers) still
  // have p >= 1/2 from laziness.
  for (NodeId v : current) {
    if (!inside_neighbors.Contains(v) && transition(v, 0) >= threshold) {
      next.push_back(v);
    }
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  return next;
}

}  // namespace

EvolvingSetResult EvolvingSet(const Graph& graph, NodeId seed,
                              const EvolvingSetOptions& options, Rng& rng) {
  HKPR_CHECK(seed < graph.NumNodes());
  EvolvingSetResult result;
  if (graph.Degree(seed) == 0) return result;
  const uint64_t volume_cap =
      options.max_volume > 0 ? options.max_volume : graph.Volume() / 2;

  // The answer is never worse than the seed singleton.
  result.cluster = {seed};
  result.conductance = Conductance(graph, result.cluster);

  for (uint32_t run = 0; run < options.restarts; ++run) {
    std::vector<NodeId> current = {seed};
    uint64_t current_volume = graph.Degree(seed);
    for (uint32_t step = 0; step < options.max_steps; ++step) {
      // Volume-biased ESP via a Metropolis filter (Doob transform of the
      // plain process): propose S' from a uniform threshold and accept with
      // probability min(1, vol(S')/vol(S)). The empty set has volume 0 and
      // is never accepted; growth is favored, which is what gives the
      // process its locality/quality guarantees.
      bool advanced = false;
      for (uint32_t attempt = 0; attempt < 16 && !advanced; ++attempt) {
        const double threshold = rng.UniformDouble();
        std::vector<NodeId> next = EvolveOnce(graph, current, threshold);
        ++result.steps;
        if (next.empty()) continue;
        const CutStats stats = ComputeCutStats(graph, next);
        const double accept =
            static_cast<double>(stats.volume) /
            static_cast<double>(current_volume);
        if (accept < 1.0 && !rng.Bernoulli(accept)) continue;
        current = std::move(next);
        current_volume = stats.volume;
        advanced = true;
        if (stats.volume > volume_cap) break;
        if (stats.conductance < result.conductance) {
          result.conductance = stats.conductance;
          result.cluster = current;
        }
      }
      if (!advanced || current_volume > volume_cap) break;
    }
  }
  return result;
}

}  // namespace hkpr
