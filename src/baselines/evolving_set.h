// Evolving Set Process local clustering (Andersen & Peres, STOC 2009).
//
// Reference [3] of the paper: the volume-biased evolving-set process that
// improved on PR-Nibble's guarantees. One step of the (lazy) process draws
// a uniform threshold U and replaces the current set S with
//   S' = { v : p(v -> S) >= U },   p(v -> S) = (1{v in S} + |N(v) cap S|/d(v)) / 2,
// i.e. the set of nodes whose lazy-walk transition probability into S
// clears the threshold. Low-conductance sets are sticky under this update;
// the best sweep over the trajectory is returned.

#ifndef HKPR_BASELINES_EVOLVING_SET_H_
#define HKPR_BASELINES_EVOLVING_SET_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace hkpr {

/// Options of the evolving-set process.
struct EvolvingSetOptions {
  /// Maximum number of evolution steps.
  uint32_t max_steps = 50;
  /// Abort when the set volume exceeds this bound (0 = vol(G)/2).
  uint64_t max_volume = 0;
  /// Number of independent restarts; the best set over all runs wins.
  uint32_t restarts = 3;
};

/// Result of an evolving-set query.
struct EvolvingSetResult {
  std::vector<NodeId> cluster;
  double conductance = 1.0;
  /// Total evolution steps over all restarts.
  uint32_t steps = 0;
};

/// Runs the lazy evolving-set process from `seed`; returns the
/// lowest-conductance set encountered. Deterministic given `rng`'s state.
EvolvingSetResult EvolvingSet(const Graph& graph, NodeId seed,
                              const EvolvingSetOptions& options, Rng& rng);

}  // namespace hkpr

#endif  // HKPR_BASELINES_EVOLVING_SET_H_
