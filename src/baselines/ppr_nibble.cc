#include "baselines/ppr_nibble.h"

#include <deque>

#include "common/flat_map.h"
#include "common/logging.h"

namespace hkpr {

PprNibbleEstimator::PprNibbleEstimator(const Graph& graph,
                                       const PprNibbleOptions& options)
    : graph_(graph), options_(options) {
  HKPR_CHECK(options.alpha > 0.0 && options.alpha < 1.0);
  HKPR_CHECK(options.eps > 0.0);
}

SparseVector PprNibbleEstimator::Estimate(NodeId seed, EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();
  const double alpha = options_.alpha;
  const double eps = options_.eps;

  SparseVector p;
  FlatMap<double> residual;
  FlatMap<bool> in_queue;
  std::deque<NodeId> queue;

  const auto maybe_enqueue = [&](NodeId v) {
    const uint32_t d = graph_.Degree(v);
    if (d == 0) return;
    if (residual.GetOr(v, 0.0) >= eps * d) {
      bool& flag = in_queue[v];
      if (!flag) {
        flag = true;
        queue.push_back(v);
      }
    }
  };

  residual[seed] = 1.0;
  maybe_enqueue(seed);

  uint64_t push_ops = 0;
  uint64_t entries = 0;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    in_queue[v] = false;
    const uint32_t d = graph_.Degree(v);
    double& rv = residual[v];
    if (d == 0 || rv < eps * d) continue;  // consumed since enqueue

    // Lazy-walk ACL push: alpha of the residual is retired into p, half of
    // the remainder stays at v, the other half spreads to the neighbors.
    const double mass = rv;
    p.Add(v, alpha * mass);
    rv = (1.0 - alpha) * mass / 2.0;
    const double share = (1.0 - alpha) * mass / (2.0 * d);
    for (NodeId u : graph_.Neighbors(v)) {
      residual[u] += share;
      maybe_enqueue(u);
    }
    maybe_enqueue(v);
    push_ops += d;
    ++entries;
  }

  if (stats != nullptr) {
    stats->push_operations = push_ops;
    stats->entries_processed = entries;
    stats->peak_bytes =
        residual.MemoryBytes() + in_queue.MemoryBytes() + p.MemoryBytes();
  }
  return p;
}

}  // namespace hkpr
