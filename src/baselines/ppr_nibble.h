// PR-Nibble (Andersen, Chung & Lang, FOCS 2006): personalized-PageRank push.
//
// Not part of the paper's headline comparison (it predates the HKPR-based
// methods) but implemented as the classical local-clustering reference and
// as the Markovian contrast to heat-kernel push discussed in Section 6.

#ifndef HKPR_BASELINES_PPR_NIBBLE_H_
#define HKPR_BASELINES_PPR_NIBBLE_H_

#include <string_view>

#include "hkpr/estimator.h"

namespace hkpr {

/// Options of the ACL push.
struct PprNibbleOptions {
  /// Teleport probability alpha of the lazy PPR walk.
  double alpha = 0.15;
  /// Push threshold eps: residuals are pushed while r[v] >= eps * d(v).
  double eps = 1e-6;
};

/// Approximate personalized PageRank via the ACL push procedure; the result
/// vector plays the same role in a sweep as an HKPR estimate.
class PprNibbleEstimator : public HkprEstimator {
 public:
  PprNibbleEstimator(const Graph& graph, const PprNibbleOptions& options);

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  std::string_view name() const override { return "PR-Nibble"; }

 private:
  const Graph& graph_;
  PprNibbleOptions options_;
};

}  // namespace hkpr

#endif  // HKPR_BASELINES_PPR_NIBBLE_H_
