#include "baselines/nibble.h"

#include <utility>

#include "clustering/sweep.h"
#include "common/flat_map.h"
#include "common/logging.h"
#include "common/sparse_vector.h"

namespace hkpr {

NibbleResult Nibble(const Graph& graph, NodeId seed,
                    const NibbleOptions& options) {
  HKPR_CHECK(seed < graph.NumNodes());
  NibbleResult result;
  if (graph.Degree(seed) == 0) return result;

  SweepOptions sweep_options;
  sweep_options.max_volume = options.max_volume;

  FlatMap<double> current;
  current[seed] = 1.0;
  for (uint32_t step = 0; step < options.max_steps; ++step) {
    // One lazy-walk step: next = (current + P^T current) / 2, computed over
    // the sparse support only.
    FlatMap<double> next;
    for (const auto& e : current.entries()) {
      if (e.value <= 0.0) continue;
      next[e.key] += 0.5 * e.value;
      const uint32_t d = graph.Degree(e.key);
      if (d == 0) continue;
      const double share = 0.5 * e.value / d;
      for (NodeId u : graph.Neighbors(e.key)) next[u] += share;
    }
    // Truncate: zero entries below eps * d(v).
    for (auto& e : next.mutable_entries()) {
      if (e.value < options.eps * graph.Degree(e.key)) e.value = 0.0;
    }
    current = std::move(next);
    ++result.steps;

    // Sweep the current vector; keep the best cut over all steps.
    SparseVector estimate;
    bool any = false;
    for (const auto& e : current.entries()) {
      if (e.value > 0.0) {
        estimate.Add(e.key, e.value);
        any = true;
      }
    }
    if (!any) break;  // truncation removed everything
    SweepResult sweep = SweepCut(graph, estimate, sweep_options);
    if (sweep.conductance < result.conductance) {
      result.conductance = sweep.conductance;
      result.cluster = std::move(sweep.cluster);
    }
  }
  return result;
}

}  // namespace hkpr
