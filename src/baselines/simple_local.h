// SimpleLocal (Veldt, Gleich & Mahoney, ICML 2016): flow-based local
// cut improvement.
//
// Faithfulness note (see DESIGN.md): the original three-stage strongly-local
// FlowImprove is realized here as iterated MQI (Lang & Rao 2004) min-cut
// improvement over a locality ball grown around the seed, with the locality
// parameter mapped to the ball size. The paper's finding — flow methods are
// slow and produce poor clusters when started from a *single seed* — is a
// property of the problem shape this variant preserves.

#ifndef HKPR_BASELINES_SIMPLE_LOCAL_H_
#define HKPR_BASELINES_SIMPLE_LOCAL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace hkpr {

/// Result of a flow-based local clustering query.
struct FlowClusterResult {
  std::vector<NodeId> cluster;
  double conductance = 1.0;
  /// Number of max-flow problems solved.
  uint32_t flow_rounds = 0;
  /// Total arcs across all flow networks built (work proxy).
  uint64_t total_arcs = 0;
};

/// Options of SimpleLocal.
struct SimpleLocalOptions {
  /// Locality parameter delta (paper sweeps 0.005..0.1): the seed ball
  /// contains ~delta * n nodes (clamped below).
  double locality = 0.02;
  uint32_t min_ball_nodes = 64;
  uint32_t max_ball_nodes = 20000;
  /// Cap on MQI improvement rounds.
  uint32_t max_rounds = 32;
};

/// Improves the conductance of a BFS ball around `seed` with repeated
/// MQI min-cut steps; returns the best set found. `rng` drives the
/// randomized ball growth.
FlowClusterResult SimpleLocal(const Graph& graph, NodeId seed,
                              const SimpleLocalOptions& options, Rng& rng);

/// One full MQI run: repeatedly solves the Lang-Rao min-cut problem on
/// `candidate` until the quotient cut stops improving. Returns the improved
/// subset (possibly `candidate` itself). Exposed for tests.
std::vector<NodeId> MqiImprove(const Graph& graph,
                               std::vector<NodeId> candidate,
                               uint32_t max_rounds, uint32_t* rounds_used,
                               uint64_t* total_arcs);

}  // namespace hkpr

#endif  // HKPR_BASELINES_SIMPLE_LOCAL_H_
