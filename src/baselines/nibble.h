// Nibble (Spielman & Teng, STOC 2004) — the original local clustering
// algorithm, via truncated lazy-random-walk power iteration.
//
// Included as the historical reference point of the paper's related work
// (Section 6): every later method (PR-Nibble, HKPR-based, flow-based)
// improves on its conductance/time trade-off.

#ifndef HKPR_BASELINES_NIBBLE_H_
#define HKPR_BASELINES_NIBBLE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace hkpr {

/// Options of Nibble.
struct NibbleOptions {
  /// Truncation threshold: after each step, entries below eps * d(v) are
  /// zeroed, keeping the iteration local.
  double eps = 1e-5;
  /// Number of lazy-walk steps (the paper-era T parameter).
  uint32_t max_steps = 40;
  /// Optional volume cap for the sweep (0 = none).
  uint64_t max_volume = 0;
};

/// Result of a Nibble query.
struct NibbleResult {
  std::vector<NodeId> cluster;
  double conductance = 1.0;
  /// Steps actually performed (the iteration stops early if truncation
  /// empties the vector).
  uint32_t steps = 0;
};

/// Runs Nibble from `seed`: iterate q <- W q with W = (I + D^-1 A)/2,
/// truncate small entries, sweep after every step, return the best cut seen.
NibbleResult Nibble(const Graph& graph, NodeId seed,
                    const NibbleOptions& options);

}  // namespace hkpr

#endif  // HKPR_BASELINES_NIBBLE_H_
