#include "baselines/hk_relax.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/logging.h"

namespace hkpr {

HkRelaxEstimator::HkRelaxEstimator(const Graph& graph,
                                   const HkRelaxOptions& options)
    : graph_(graph), options_(options), kernel_(options.t) {
  HKPR_CHECK(options.eps_a > 0.0 && options.eps_a < 1.0);

  // Truncation degree: smallest N with Poisson tail mass
  // e^{-t} sum_{k > N} t^k/k! <= eps_a / 2. The kernel's CDF gives the tail
  // directly. (The original code uses an equivalent factorial bound; our
  // paper notes N <= 2t log(1/eps_a).)
  uint32_t n_trunc = 1;
  while (n_trunc < kernel_.MaxHop() &&
         kernel_.Psi(n_trunc + 1) > options.eps_a / 2.0) {
    ++n_trunc;
  }
  taylor_degree_ = n_trunc;

  // psis_[j] = sum_{i=0}^{N-j} t^i * j! / (j+i)! via the backward recurrence
  // psis_[N] = 1, psis_[j] = 1 + (t/(j+1)) * psis_[j+1]. These weight the
  // per-level residuals in the error bound and hence in the push threshold.
  psis_.assign(taylor_degree_ + 1, 0.0);
  psis_[taylor_degree_] = 1.0;
  for (uint32_t j = taylor_degree_; j-- > 0;) {
    psis_[j] = 1.0 + psis_[j + 1] * options_.t / static_cast<double>(j + 1);
  }
}

SparseVector HkRelaxEstimator::Estimate(NodeId seed, EstimatorStats* stats) {
  return EstimateWithFreshWorkspace(*this, seed, stats);
}

const SparseVector& HkRelaxEstimator::EstimateInto(NodeId seed,
                                                   QueryWorkspace& ws,
                                                   EstimatorStats* stats) {
  HKPR_CHECK(seed < graph_.NumNodes());
  if (stats != nullptr) stats->Reset();
  const uint32_t n_trunc = taylor_degree_;
  const double exp_t = std::exp(options_.t);
  const double exp_neg_t = std::exp(-options_.t);

  // Per-level residuals of the Taylor blocks live in the workspace's residue
  // table (hop k = Taylor level k; the hop sums are not maintained);
  // ws.result accumulates the unscaled solution (scaled by e^{-t} at the
  // end). The push queue is FIFO over ws.starts with a moving head — the
  // vector only grows within a query, so steady-state queries reuse its
  // capacity instead of allocating a deque.
  ws.PrepareQuery(n_trunc);
  SparseVector& x = ws.result;
  std::vector<std::pair<NodeId, uint32_t>>& queue = ws.starts;
  size_t queue_head = 0;

  // Push threshold for an entry (v, j): r >= e^t * eps * d(v) / (2 N psis_j).
  const auto threshold = [&](uint32_t degree, uint32_t j) {
    return exp_t * options_.eps_a * static_cast<double>(degree) /
           (2.0 * static_cast<double>(n_trunc) * psis_[j]);
  };

  ws.residues.MutableHop(0)[seed] = 1.0;
  if (1.0 >= threshold(std::max(graph_.Degree(seed), 1u), 0)) {
    queue.emplace_back(seed, 0u);
  }

  uint64_t push_ops = 0;
  uint64_t entries = 0;
  while (queue_head < queue.size()) {
    const auto [v, j] = queue[queue_head++];
    double& rv = ws.residues.MutableHop(j)[v];
    const double mass_v = rv;
    if (mass_v <= 0.0) continue;  // already consumed by a re-queue
    rv = 0.0;
    x.Add(v, mass_v);
    ++entries;
    const uint32_t d = graph_.Degree(v);
    if (d == 0) continue;
    push_ops += d;

    if (j == n_trunc) continue;  // deepest level: mass retired into x
    const double mass =
        mass_v * options_.t / (static_cast<double>(j + 1) * d);
    for (NodeId u : graph_.Neighbors(v)) {
      if (j + 1 == n_trunc) {
        // Final level: residual would never be pushed again; retire the
        // plain random-walk share directly (reference implementation's
        // truncation rule).
        x.Add(u, mass_v / static_cast<double>(d));
        continue;
      }
      double& ru = ws.residues.MutableHop(j + 1)[u];
      const double before = ru;
      ru = before + mass;
      const double th = threshold(graph_.Degree(u), j + 1);
      if (before < th && ru >= th) queue.emplace_back(u, j + 1);
    }
  }

  // Scale to the heat kernel: rho = e^{-t} * x, in place.
  x.Scale(exp_neg_t);

  if (stats != nullptr) {
    stats->push_operations = push_ops;
    stats->entries_processed = entries;
    stats->peak_bytes = ws.residues.MemoryBytes() + x.MemoryBytes() +
                        queue.capacity() * sizeof(queue[0]);
  }
  return x;
}

}  // namespace hkpr
