// HK-Relax (Kloster & Gleich, "Heat Kernel Based Community Detection",
// KDD 2014) — the state-of-the-art deterministic baseline the paper
// compares against.
//
// HK-Relax truncates the Taylor expansion of exp(tP) at degree N and relaxes
// the residuals of the blocks v_j = (t^j / j!) P^j e_s with a queue-driven
// push procedure. The per-entry push threshold involves the factor e^t,
// which is where the e^t term in its O(t e^t log(1/eps)/eps) complexity
// comes from (Table 1). Guarantee: |rho_hat[v] - rho[v]| / d(v) <= eps_a for
// every node.

#ifndef HKPR_BASELINES_HK_RELAX_H_
#define HKPR_BASELINES_HK_RELAX_H_

#include <string_view>

#include "hkpr/estimator.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/workspace.h"

namespace hkpr {

/// Options of HK-Relax.
struct HkRelaxOptions {
  /// Heat constant t.
  double t = 5.0;
  /// Absolute degree-normalized error threshold eps_a.
  double eps_a = 1e-4;
};

/// Deterministic push-based HKPR approximation with an absolute
/// degree-normalized error guarantee.
class HkRelaxEstimator : public HkprEstimator, public WorkspaceEstimator {
 public:
  HkRelaxEstimator(const Graph& graph, const HkRelaxOptions& options);

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  /// Workspace-aware variant: runs the query entirely inside `ws` (the
  /// residue table holds the per-level Taylor residuals, `ws.starts` backs
  /// the push queue) and returns a reference to `ws.result`, valid until the
  /// next query on that workspace. Allocation-free once the workspace
  /// capacities have warmed up, so serving frontends can offer HK-Relax
  /// under the same reuse contract as TEA+.
  const SparseVector& EstimateInto(NodeId seed, QueryWorkspace& ws,
                                   EstimatorStats* stats = nullptr) override;

  /// HK-Relax is deterministic; re-seeding is a no-op.
  void Reseed(uint64_t /*seed*/) override {}

  std::string_view name() const override { return "HK-Relax"; }

  /// Taylor truncation degree N (tail mass e^{-t} sum_{k>N} t^k/k! <= eps/2).
  uint32_t taylor_degree() const { return taylor_degree_; }

 private:
  const Graph& graph_;
  HkRelaxOptions options_;
  HeatKernel kernel_;
  uint32_t taylor_degree_;
  std::vector<double> psis_;  // psis_[j] = sum_{i=0}^{N-j} t^i j!/(j+i)!
};

}  // namespace hkpr

#endif  // HKPR_BASELINES_HK_RELAX_H_
