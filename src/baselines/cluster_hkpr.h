// ClusterHKPR (Chung & Simpson, "Computing Heat Kernel PageRank and a Local
// Clustering Algorithm", IWOCA 2014) — the pure random-walk baseline with
// the 16 log(n) / eps^3 walk count.

#ifndef HKPR_BASELINES_CLUSTER_HKPR_H_
#define HKPR_BASELINES_CLUSTER_HKPR_H_

#include <string_view>

#include "common/random.h"
#include "hkpr/estimator.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/workspace.h"

namespace hkpr {

/// Options of ClusterHKPR.
struct ClusterHkprOptions {
  /// Heat constant t.
  double t = 5.0;
  /// Error parameter eps of the (1+eps)/eps guarantee.
  double eps = 0.05;
  /// Hard cap on the number of walks. The theoretical count
  /// 16 log(n)/eps^3 explodes for small eps (the paper omits such data
  /// points because they take hours); the cap keeps sweeps feasible.
  uint64_t max_walks = 200'000'000;
  /// Walk-length cap K from the original analysis; 0 = use the heat-kernel
  /// table bound (no practical truncation).
  uint32_t length_cap = 0;
};

/// Monte-Carlo HKPR with the Chung-Simpson walk count and length cap.
///
/// Also implements the serving-backend contract (WorkspaceEstimator):
/// EstimateInto() runs the same walks — bit-identically, same RNG stream —
/// inside a caller-provided workspace, and Reseed() replays the randomness
/// of a freshly constructed estimator, so the baseline registers in the
/// EstimatorRegistry ("cluster-hkpr") and serves through every query
/// frontend.
class ClusterHkprEstimator : public HkprEstimator, public WorkspaceEstimator {
 public:
  ClusterHkprEstimator(const Graph& graph, const ClusterHkprOptions& options,
                       uint64_t seed);

  SparseVector Estimate(NodeId seed, EstimatorStats* stats) override;
  using HkprEstimator::Estimate;

  /// Runs the query entirely inside `ws` (end-point counts accumulate into
  /// `ws.result`) and returns a reference to `ws.result`, valid until the
  /// next query on that workspace. Allocation-free once the workspace
  /// capacities have warmed up; bit-identical to Estimate().
  const SparseVector& EstimateInto(NodeId seed, QueryWorkspace& ws,
                                   EstimatorStats* stats = nullptr) override;

  /// Re-seeds the walk RNG; queries after a Reseed(s) replay the same
  /// randomness as a freshly constructed estimator with seed `s`.
  void Reseed(uint64_t seed) override { rng_.Reseed(seed); }

  std::string_view name() const override { return "ClusterHKPR"; }

  uint64_t NumWalks() const { return num_walks_; }

 private:
  const Graph& graph_;
  ClusterHkprOptions options_;
  HeatKernel kernel_;
  uint64_t num_walks_;
  uint32_t length_cap_;
  Rng rng_;
};

}  // namespace hkpr

#endif  // HKPR_BASELINES_CLUSTER_HKPR_H_
