// Deterministic byte accounting for algorithm state.
//
// The paper's Figure 5 reports memory overhead per algorithm. Process RSS is
// noisy and allocator-dependent, so estimators instead report the bytes held
// by their major data structures (residue tables, reserve vectors, alias
// structures, walk buffers) through this tracker. The dataset registry adds
// the graph's own bytes, mirroring the paper's "including the input graph"
// accounting.

#ifndef HKPR_COMMON_MEM_TRACKER_H_
#define HKPR_COMMON_MEM_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hkpr {

/// Process-wide heap-allocation counters.
///
/// The counters are inert by default: they only advance when a translation
/// unit in the binary routes its global operator new/delete through
/// RecordAllocation/RecordDeallocation (the test suite does this to prove
/// that steady-state workspace queries perform zero heap allocations).
/// Everything is lock-free and async-signal-safe apart from the allocation
/// being counted.
class AllocCounters {
 public:
  /// Number of operator-new calls observed so far.
  static uint64_t Allocations() {
    return allocations_.load(std::memory_order_relaxed);
  }

  /// Number of operator-delete calls observed so far.
  static uint64_t Deallocations() {
    return deallocations_.load(std::memory_order_relaxed);
  }

  static void RecordAllocation() {
    allocations_.fetch_add(1, std::memory_order_relaxed);
  }

  static void RecordDeallocation() {
    deallocations_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  inline static std::atomic<uint64_t> allocations_{0};
  inline static std::atomic<uint64_t> deallocations_{0};
};

/// Tracks current and peak logical bytes of a single algorithm run.
class MemTracker {
 public:
  /// Registers `bytes` as currently allocated.
  void Add(size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  /// Registers `bytes` as released.
  void Release(size_t bytes) { current_ = bytes > current_ ? 0 : current_ - bytes; }

  /// Replaces the current figure for a component: call with the previous and
  /// new sizes of a container as it grows.
  void Update(size_t old_bytes, size_t new_bytes) {
    Release(old_bytes);
    Add(new_bytes);
  }

  size_t current_bytes() const { return current_; }
  size_t peak_bytes() const { return peak_; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

}  // namespace hkpr

#endif  // HKPR_COMMON_MEM_TRACKER_H_
