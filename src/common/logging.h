// Minimal logging and assertion macros.
//
// HKPR_CHECK aborts on violated invariants in all build types; HKPR_DCHECK
// only in debug builds. Both print the failing condition and location.

#ifndef HKPR_COMMON_LOGGING_H_
#define HKPR_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace hkpr {
namespace internal {

/// Collects a streamed message and aborts the process on destruction.
/// Used by the CHECK macros; not part of the public API.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
            << condition << " ";
  }
  [[noreturn]] ~FatalMessage() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hkpr

#define HKPR_CHECK(cond)                                         \
  if (cond) {                                                     \
  } else /* NOLINT */                                             \
    ::hkpr::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define HKPR_CHECK_OK(expr)                                       \
  do {                                                            \
    ::hkpr::Status _st = (expr);                                  \
    HKPR_CHECK(_st.ok()) << _st.ToString();                       \
  } while (0)

#ifndef NDEBUG
#define HKPR_DCHECK(cond) HKPR_CHECK(cond)
#else
#define HKPR_DCHECK(cond) \
  if (true) {             \
  } else /* NOLINT */     \
    ::hkpr::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()
#endif

#endif  // HKPR_COMMON_LOGGING_H_
