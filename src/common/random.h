// Deterministic, fast pseudo-random number generation.
//
// All randomized algorithms in this library draw from `Rng`, a xoshiro256**
// generator seeded through SplitMix64. A 64-bit seed fully determines every
// random decision, which makes tests and benchmarks reproducible.

#ifndef HKPR_COMMON_RANDOM_H_
#define HKPR_COMMON_RANDOM_H_

#include <cstdint>
#include <limits>

#include "common/logging.h"

namespace hkpr {

/// SplitMix64 finalizer: a bijective 64-bit mix with full avalanche.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// SplitMix64 step; used to expand a single 64-bit seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  return Mix64(state += 0x9E3779B97F4A7C15ULL);
}

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, 2^256-1 period.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator deterministically from a single 64-bit value.
  explicit Rng(uint64_t seed = 0x1234567890ABCDEFULL) { Reseed(seed); }

  /// Re-initializes the state from `seed`.
  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return Next(); }

  /// Next raw 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// multiply-shift method; the tiny bias (< 2^-64 * bound) is irrelevant
  /// for the bounds used in this library.
  uint64_t UniformInt(uint64_t bound) {
    HKPR_DCHECK(bound > 0);
    __extension__ using Uint128 = unsigned __int128;
    const Uint128 product = static_cast<Uint128>(Next()) * bound;
    return static_cast<uint64_t>(product >> 64);
  }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

/// Counter-based PRNG: draw d of stream s under seed k is the pure function
/// Mix64(key(k, s) + d * golden-gamma) — the SplitMix64 sequence started at a
/// per-stream key. No draw depends on any other draw, so an engine that
/// assigns one stream per random walk gets results that are bit-identical
/// under any interleaving, sharding or thread count: the walk kernel
/// (hkpr/walk_kernel.h) is built on exactly this property. Statistically the
/// output is the SplitMix64 generator's, which passes BigCrush.
///
/// Mirrors the `Rng` surface (UniformDouble/UniformInt/Bernoulli and the
/// UniformRandomBitGenerator concept) so samplers templated on the generator
/// accept either.
class CounterRng {
 public:
  using result_type = uint64_t;

  CounterRng() = default;

  /// Stream `stream` of the family identified by `seed`.
  CounterRng(uint64_t seed, uint64_t stream) { ResetStream(seed, stream); }

  /// Re-points this generator at draw 0 of (seed, stream).
  void ResetStream(uint64_t seed, uint64_t stream) {
    // Two dependent mixes decorrelate (seed, stream) pairs that differ in
    // low bits — the common case, streams being consecutive walk indices.
    key_ = Mix64(seed + Mix64(stream * 0x9E3779B97F4A7C15ULL + 1));
    counter_ = 0;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return Next(); }

  /// Next raw 64 random bits.
  uint64_t Next() {
    counter_ += 0x9E3779B97F4A7C15ULL;
    return Mix64(key_ + counter_);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound); Lemire multiply-shift as in Rng.
  uint64_t UniformInt(uint64_t bound) {
    HKPR_DCHECK(bound > 0);
    __extension__ using Uint128 = unsigned __int128;
    const Uint128 product = static_cast<Uint128>(Next()) * bound;
    return static_cast<uint64_t>(product >> 64);
  }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t key_ = 0;
  uint64_t counter_ = 0;
};

}  // namespace hkpr

#endif  // HKPR_COMMON_RANDOM_H_
