// Lightweight Status / Result types for fallible operations.
//
// The core algorithms in this library are exception-free; operations that can
// fail for environmental reasons (file I/O, malformed input, invalid
// parameters) return `Status` or `Result<T>` in the style of Apache Arrow /
// absl. Hot paths never construct Status objects.

#ifndef HKPR_COMMON_STATUS_H_
#define HKPR_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace hkpr {

/// Error taxonomy for this library. Kept deliberately small.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kNotFound = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
};

/// Returns a human-readable name for a status code ("OK", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); the error case carries a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error wrapper. `ok()` implies `value()` is valid; accessing
/// `value()` on an error aborts in debug builds (undefined otherwise).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Moves the value out; only valid when ok().
  T ValueOrDie() && { return std::move(*value_); }

 private:
  Status status_ = Status::OK();
  std::optional<T> value_;
};

/// Propagates an error Status from an expression.
#define HKPR_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::hkpr::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define HKPR_ASSIGN_OR_RETURN(lhs, expr)      \
  auto _res_##__LINE__ = (expr);              \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = std::move(_res_##__LINE__).value()

}  // namespace hkpr

#endif  // HKPR_COMMON_STATUS_H_
