#include "common/alias_sampler.h"

#include <cstddef>

#include "common/logging.h"

namespace hkpr {

void AliasSampler::Build(const std::vector<double>& weights) {
  const size_t n = weights.size();
  HKPR_CHECK(n > 0) << "alias table needs at least one weight";

  total_weight_ = 0.0;
  for (double w : weights) {
    HKPR_DCHECK(w >= 0.0);
    total_weight_ += w;
  }
  HKPR_CHECK(total_weight_ > 0.0) << "alias table needs positive total weight";

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled weights; an entry is "small" if below 1 (its column can be topped
  // up by a single alias) and "large" otherwise.
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total_weight_;
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Remaining columns are exactly 1 up to floating-point error.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

}  // namespace hkpr
