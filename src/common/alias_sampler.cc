#include "common/alias_sampler.h"

#include <cstddef>

#include "common/logging.h"

namespace hkpr {

void AliasSampler::Build(const std::vector<double>& weights) {
  const size_t n = weights.size();
  HKPR_CHECK(n > 0) << "alias table needs at least one weight";

  total_weight_ = 0.0;
  for (double w : weights) {
    HKPR_DCHECK(w >= 0.0);
    total_weight_ += w;
  }
  HKPR_CHECK(total_weight_ > 0.0) << "alias table needs positive total weight";

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled weights; an entry is "small" if below 1 (its column can be topped
  // up by a single alias) and "large" otherwise. The scratch vectors are
  // members so that rebuilding reuses their capacity.
  scaled_.assign(n, 0.0);
  const double scale = static_cast<double>(n) / total_weight_;
  for (size_t i = 0; i < n; ++i) scaled_[i] = weights[i] * scale;

  small_.clear();
  large_.clear();
  small_.reserve(n);
  large_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled_[i] < 1.0 ? small_ : large_).push_back(static_cast<uint32_t>(i));
  }

  while (!small_.empty() && !large_.empty()) {
    const uint32_t s = small_.back();
    small_.pop_back();
    const uint32_t l = large_.back();
    prob_[s] = scaled_[s];
    alias_[s] = l;
    scaled_[l] = (scaled_[l] + scaled_[s]) - 1.0;
    if (scaled_[l] < 1.0) {
      large_.pop_back();
      small_.push_back(l);
    }
  }
  // Remaining columns are exactly 1 up to floating-point error.
  for (uint32_t i : large_) prob_[i] = 1.0;
  for (uint32_t i : small_) prob_[i] = 1.0;
}

}  // namespace hkpr
