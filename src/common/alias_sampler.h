// Walker's alias method for O(1) sampling from a discrete distribution.
//
// TEA and TEA+ sample random-walk start entries (u, k) proportionally to the
// residue r_k[u] (Algorithm 3, Line 10). The alias structure is built once in
// O(n) over the non-zero residues and then answers each sample in O(1), as in
// the paper's reference [40] (Walker, 1974).

#ifndef HKPR_COMMON_ALIAS_SAMPLER_H_
#define HKPR_COMMON_ALIAS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace hkpr {

/// O(1) sampler over indices {0, ..., n-1} with probabilities proportional to
/// a non-negative weight vector.
class AliasSampler {
 public:
  AliasSampler() = default;

  /// Builds the alias table from `weights`. Weights must be non-negative and
  /// have a positive sum. O(n) time and space.
  explicit AliasSampler(const std::vector<double>& weights) { Build(weights); }

  /// (Re)builds the table; see constructor. Rebuilding reuses the table and
  /// scratch capacity from previous builds, so repeatedly rebuilding a
  /// sampler (one per query in a reused workspace) stops allocating once the
  /// largest support size has been seen.
  void Build(const std::vector<double>& weights);

  /// Draws an index with probability weights[i] / sum(weights). Templated on
  /// the generator so both the sequential `Rng` and the walk kernel's
  /// `CounterRng` streams can drive it; the draw order (UniformInt, then
  /// UniformDouble) is part of the sampler's deterministic contract.
  template <typename RngT>
  uint32_t Sample(RngT& rng) const {
    return ResolveSample(PrepareSample(rng));
  }

  /// Two-phase sampling for interleaved/batched use: PrepareSample consumes
  /// exactly the draws Sample would (same order, same stream) and prefetches
  /// the chosen column's table entries; ResolveSample — issued a batch round
  /// later, once the prefetch has landed — finishes the alias indirection.
  /// ResolveSample(PrepareSample(rng)) == Sample(rng) draw for draw.
  struct PendingSample {
    uint32_t column;
    double accept;
  };

  template <typename RngT>
  PendingSample PrepareSample(RngT& rng) const {
    PendingSample pending;
    pending.column = static_cast<uint32_t>(rng.UniformInt(prob_.size()));
    pending.accept = rng.UniformDouble();
#if defined(__GNUC__)
    __builtin_prefetch(&prob_[pending.column], 0, 1);
    __builtin_prefetch(&alias_[pending.column], 0, 1);
#endif
    return pending;
  }

  uint32_t ResolveSample(const PendingSample& pending) const {
    return pending.accept < prob_[pending.column] ? pending.column
                                                  : alias_[pending.column];
  }

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// Total weight the table was built from.
  double total_weight() const { return total_weight_; }

  /// Approximate heap bytes held (for memory accounting).
  size_t MemoryBytes() const {
    return prob_.capacity() * sizeof(double) +
           alias_.capacity() * sizeof(uint32_t) +
           scaled_.capacity() * sizeof(double) +
           (small_.capacity() + large_.capacity()) * sizeof(uint32_t);
  }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
  double total_weight_ = 0.0;
  // Build() scratch, kept across rebuilds so rebuilding is allocation-free.
  std::vector<double> scaled_;
  std::vector<uint32_t> small_;
  std::vector<uint32_t> large_;
};

}  // namespace hkpr

#endif  // HKPR_COMMON_ALIAS_SAMPLER_H_
