// Sparse node->double vector used for HKPR estimates and residues.

#ifndef HKPR_COMMON_SPARSE_VECTOR_H_
#define HKPR_COMMON_SPARSE_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/flat_map.h"

namespace hkpr {

/// A sparse vector over node ids with O(1) accumulate/lookup and
/// insertion-order iteration.
///
/// HKPR estimators produce one of these per query. Beyond the raw per-node
/// entries, a `degree_offset` scalar can be attached: TEA+ adds
/// `eps_r*delta/2 * d(v)` to every node (Lines 18-19 of Algorithm 5), which
/// the paper notes can be represented in O(1) by recording the scalar and
/// applying it on access. `ValueWithOffset(v, d)` folds it in.
class SparseVector {
 public:
  SparseVector() = default;
  explicit SparseVector(size_t expected_nnz) : map_(expected_nnz) {}

  /// Pre-sizes the backing map for roughly `expected_nnz` entries; a later
  /// Clear() keeps the capacity, so reused vectors stop allocating once they
  /// have seen their steady-state support size.
  void Reserve(size_t expected_nnz) { map_.Reserve(expected_nnz); }

  /// Adds `delta` to entry `v`.
  void Add(uint32_t v, double delta) { map_[v] += delta; }

  /// Sets entry `v` to `value`.
  void Set(uint32_t v, double value) { map_[v] = value; }

  /// Returns the stored (offset-free) value of entry `v` (0 if absent).
  double Get(uint32_t v) const { return map_.GetOr(v, 0.0); }

  /// Returns the value of entry `v` including the per-degree offset, where
  /// `degree` is the degree of `v` in the graph this vector refers to.
  double ValueWithOffset(uint32_t v, uint32_t degree) const {
    return Get(v) + degree_offset_ * degree;
  }

  /// Scalar added to every node, in units of the node's degree.
  double degree_offset() const { return degree_offset_; }
  void set_degree_offset(double offset) { degree_offset_ = offset; }

  size_t nnz() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear() {
    map_.Clear();
    degree_offset_ = 0.0;
  }

  /// Multiplies every stored entry and the degree offset by `factor`, in
  /// place and allocation-free (final e^{-t} scaling of workspace-resident
  /// results).
  void Scale(double factor) {
    for (auto& e : map_.mutable_entries()) e.value *= factor;
    degree_offset_ *= factor;
  }

  /// Sum of all stored entries (excluding the degree offset).
  double Sum() const {
    double s = 0.0;
    for (const auto& e : map_.entries()) s += e.value;
    return s;
  }

  const std::vector<FlatMap<double>::Entry>& entries() const {
    return map_.entries();
  }

  /// A copy whose backing table is sized to this vector's support instead
  /// of inheriting the source's (possibly much larger, warmed-up) capacity.
  /// Use when retaining results produced inside a reused workspace.
  SparseVector CompactCopy() const {
    SparseVector out(nnz());
    for (const auto& e : map_.entries()) out.map_[e.key] = e.value;
    out.degree_offset_ = degree_offset_;
    return out;
  }

  /// Entries sorted by key, useful for deterministic output and comparisons.
  std::vector<FlatMap<double>::Entry> SortedEntries() const {
    auto out = map_.entries();
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    return out;
  }

  size_t MemoryBytes() const { return map_.MemoryBytes(); }

 private:
  FlatMap<double> map_;
  double degree_offset_ = 0.0;
};

}  // namespace hkpr

#endif  // HKPR_COMMON_SPARSE_VECTOR_H_
