#include "common/parse.h"

#include <cmath>
#include <cstdlib>
#include <string>

namespace hkpr {

std::optional<uint64_t> ParseUint64(std::string_view text, uint64_t max) {
  if (text.empty()) return std::nullopt;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    // Overflow check before the multiply-add: value*10 + digit > max?
    if (value > max / 10 || (value == max / 10 && digit > max % 10)) {
      return std::nullopt;
    }
    value = value * 10 + digit;
  }
  return value;
}

std::optional<uint32_t> ParseUint32(std::string_view text, uint32_t max) {
  const std::optional<uint64_t> value = ParseUint64(text, max);
  if (!value.has_value()) return std::nullopt;
  return static_cast<uint32_t>(*value);
}

std::optional<double> ParseDouble(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // strtod needs a NUL-terminated buffer; protocol tokens are short, so
  // the temporary string is cheap and keeps the call out of hot paths.
  const std::string buf(text);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

}  // namespace hkpr
