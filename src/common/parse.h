// Validated parsing of externally supplied numeric strings.
//
// The server's flag and protocol surfaces used to funnel through
// std::atoi/std::atoll, which have two classic failure modes for
// network-facing input: garbage parses silently to 0 ("--nodes=abc"), and
// negative values wrap through unsigned casts ("--workers=-1" became
// 4294967295 workers). These helpers parse with strtoull/strtod, reject
// empty strings, trailing junk, signs on unsigned values, and
// out-of-range magnitudes, and return nullopt instead of a sentinel — the
// caller decides how to report.

#ifndef HKPR_COMMON_PARSE_H_
#define HKPR_COMMON_PARSE_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace hkpr {

/// Parses a base-10 unsigned integer. Rejects empty input, any non-digit
/// character (including leading '-'/'+', whitespace and trailing junk),
/// and values above `max`. Never wraps.
std::optional<uint64_t> ParseUint64(std::string_view text,
                                    uint64_t max = UINT64_MAX);

/// ParseUint64 restricted to uint32_t range.
std::optional<uint32_t> ParseUint32(std::string_view text,
                                    uint32_t max = UINT32_MAX);

/// Parses a finite double. Rejects empty input, trailing junk, and
/// inf/nan (external callers never mean them).
std::optional<double> ParseDouble(std::string_view text);

}  // namespace hkpr

#endif  // HKPR_COMMON_PARSE_H_
