// Wall-clock timing utilities used by benchmarks and work-counter reporting.

#ifndef HKPR_COMMON_TIMER_H_
#define HKPR_COMMON_TIMER_H_

#include <chrono>

namespace hkpr {

/// A simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hkpr

#endif  // HKPR_COMMON_TIMER_H_
