// Open-addressing hash containers keyed by 32-bit node ids.
//
// The push phase of every HKPR algorithm maintains sparse node->value maps
// (reserves, per-hop residues) whose keys are dense small integers. These
// containers use linear probing over a power-of-two table with a strong
// multiplicative hash, no tombstones (the algorithms never erase single
// keys), and contiguous storage for cache-friendly iteration over entries.
//
// They deliberately support only the operations the algorithms need:
// insert-or-accumulate, lookup, iteration, clear.

#ifndef HKPR_COMMON_FLAT_MAP_H_
#define HKPR_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace hkpr {

namespace internal {

/// Fibonacci-style multiplicative hash for 32-bit keys.
inline uint64_t HashU32(uint32_t key) {
  uint64_t x = key;
  x *= 0x9E3779B97F4A7C15ULL;
  x ^= x >> 29;
  return x;
}

}  // namespace internal

/// A node-id -> T map with open addressing and insertion-order entry storage.
///
/// Entries are stored contiguously in insertion order, so iterating visits
/// each key exactly once in a cache-friendly sweep; the probe table stores
/// indices into the entry array. Average O(1) insert/lookup.
template <typename T>
class FlatMap {
 public:
  struct Entry {
    uint32_t key;
    T value;
  };

  FlatMap() = default;

  /// Pre-sizes the table for roughly `n` keys.
  explicit FlatMap(size_t n) { Reserve(n); }

  /// Ensures capacity for `n` keys without rehashing during growth to n.
  void Reserve(size_t n) {
    entries_.reserve(n);
    size_t needed = NextPow2(n * 2 + kMinSlots);
    if (needed > slots_.size()) Rehash(needed);
  }

  /// Returns a mutable reference to the value for `key`, default-constructing
  /// it on first access.
  T& operator[](uint32_t key) {
    if (slots_.empty()) Rehash(kMinSlots);
    size_t idx = FindSlot(key);
    if (slots_[idx] != kEmpty) return entries_[slots_[idx]].value;
    if ((entries_.size() + 1) * 2 > slots_.size()) {
      Rehash(slots_.size() * 2);
      idx = FindSlot(key);
    }
    slots_[idx] = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{key, T{}});
    return entries_.back().value;
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  const T* Find(uint32_t key) const {
    if (slots_.empty()) return nullptr;
    size_t idx = FindSlot(key);
    if (slots_[idx] == kEmpty) return nullptr;
    return &entries_[slots_[idx]].value;
  }

  T* Find(uint32_t key) {
    return const_cast<T*>(static_cast<const FlatMap*>(this)->Find(key));
  }

  /// Returns the value for `key` or `fallback` if absent.
  T GetOr(uint32_t key, T fallback) const {
    const T* v = Find(key);
    return v ? *v : fallback;
  }

  bool Contains(uint32_t key) const { return Find(key) != nullptr; }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Removes all entries but keeps allocated capacity.
  ///
  /// When few slots are touched relative to the table size, clears in
  /// O(touched) by emptying only the occupied slots instead of refilling the
  /// whole probe table — this is what makes reused query workspaces cheap to
  /// reset between queries. Entries are removed in reverse insertion order:
  /// with linear probing and no deletions, every slot a key probed over was
  /// occupied by an *earlier* insertion, so removing latest-first never
  /// breaks the probe chain of a key that is still present.
  void Clear() {
    // Empty map: every slot is already kEmpty (the only slot writers are
    // insertion and this function), so there is nothing to wipe. This makes
    // per-query resets of warmed-but-unused maps free.
    if (entries_.empty()) return;
    if (entries_.size() * 8 <= slots_.size()) {
      for (size_t i = entries_.size(); i-- > 0;) {
        slots_[FindSlot(entries_[i].key)] = kEmpty;
      }
    } else {
      std::fill(slots_.begin(), slots_.end(), kEmpty);
    }
    entries_.clear();
  }

  /// Insertion-ordered entries. Stable unless the map is mutated.
  const std::vector<Entry>& entries() const { return entries_; }
  std::vector<Entry>& mutable_entries() { return entries_; }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  /// Approximate heap bytes held by this container (for memory accounting).
  size_t MemoryBytes() const {
    return entries_.capacity() * sizeof(Entry) +
           slots_.capacity() * sizeof(uint32_t);
  }

 private:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr size_t kMinSlots = 16;

  static size_t NextPow2(size_t n) {
    size_t p = kMinSlots;
    while (p < n) p <<= 1;
    return p;
  }

  size_t FindSlot(uint32_t key) const {
    const size_t mask = slots_.size() - 1;
    size_t idx = internal::HashU32(key) & mask;
    while (slots_[idx] != kEmpty && entries_[slots_[idx]].key != key) {
      idx = (idx + 1) & mask;
    }
    return idx;
  }

  void Rehash(size_t new_slots) {
    slots_.assign(new_slots, kEmpty);
    const size_t mask = slots_.size() - 1;
    for (uint32_t i = 0; i < entries_.size(); ++i) {
      size_t idx = internal::HashU32(entries_[i].key) & mask;
      while (slots_[idx] != kEmpty) idx = (idx + 1) & mask;
      slots_[idx] = i;
    }
  }

  std::vector<Entry> entries_;
  std::vector<uint32_t> slots_;
};

/// A set of 32-bit node ids with the same design as FlatMap.
class FlatSet {
 public:
  FlatSet() = default;
  explicit FlatSet(size_t n) { map_.Reserve(n); }

  void Reserve(size_t n) { map_.Reserve(n); }

  /// Inserts `key`; returns true if newly inserted.
  bool Insert(uint32_t key) {
    size_t before = map_.size();
    map_[key] = true;
    return map_.size() != before;
  }

  bool Contains(uint32_t key) const { return map_.Contains(key); }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear() { map_.Clear(); }

  /// Iterates inserted keys in insertion order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& e : map_.entries()) fn(e.key);
  }

  size_t MemoryBytes() const { return map_.MemoryBytes(); }

 private:
  FlatMap<bool> map_;
};

}  // namespace hkpr

#endif  // HKPR_COMMON_FLAT_MAP_H_
